//! Panic-contained VM entry point.
//!
//! The VM substrate deliberately hosts seeded bugs, and harness bugs (in
//! the mutators, the fuzzer, or the VM itself) are a fact of life in
//! long campaigns. `supervised_run` is the crash barrier: it converts a
//! panic anywhere inside `Vm::run_program` into a structured [`VmPanic`]
//! value instead of tearing down the whole campaign, and suppresses the
//! default stderr backtrace spew for panics it contains (panics on other
//! threads, or outside the supervisor, still report normally).

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use cse_bytecode::BProgram;

use crate::exec::ExecutionResult;
use crate::{Vm, VmConfig};

/// A contained VM panic: the payload of a `panic!` that unwound out of
/// `Vm::run_program`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmPanic {
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub payload: String,
}

impl std::fmt::Display for VmPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VM panicked: {}", self.payload)
    }
}

thread_local! {
    /// True while this thread is inside a supervised run; makes the
    /// process-wide panic hook stay quiet for panics we are about to
    /// catch.
    static CONTAINING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CONTAINING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` with panics contained: `Err(VmPanic)` instead of an unwind,
/// and no default panic-hook output for the contained panic.
///
/// This is the generic barrier; [`supervised_run`] is the VM-specific
/// entry point. Exposed so harness layers (mutation, compilation) can
/// reuse the same containment.
pub fn contain_panics<T>(f: impl FnOnce() -> T) -> Result<T, VmPanic> {
    install_quiet_hook();
    let was = CONTAINING.with(|c| c.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINING.with(|c| c.set(was));
    result.map_err(|payload| VmPanic { payload: payload_to_string(payload.as_ref()) })
}

/// [`Vm::run_program`] behind the crash barrier.
pub fn supervised_run(program: &BProgram, config: VmConfig) -> Result<ExecutionResult, VmPanic> {
    contain_panics(|| Vm::run_program(program, config))
}

/// [`Vm::run_program_cached`] behind the crash barrier: like
/// [`supervised_run`], but sharing compiled code and decoded
/// instructions with other runs through `artifacts` (see
/// [`crate::jit::SharedArtifactCache`]).
pub fn supervised_run_cached(
    program: &BProgram,
    config: VmConfig,
    artifacts: &crate::jit::ProgramArtifacts,
) -> Result<ExecutionResult, VmPanic> {
    contain_panics(|| Vm::run_program_cached(program, config, artifacts))
}

/// [`supervised_run_cached`], additionally reporting the run's
/// [`crate::WarmthProfile`]. Execution memoization uses the per-method
/// invocation counts to reconstruct the set of methods a run actually
/// consulted (its content footprint).
pub fn supervised_run_warmth_cached(
    program: &BProgram,
    config: VmConfig,
    artifacts: &crate::jit::ProgramArtifacts,
) -> Result<(ExecutionResult, crate::WarmthProfile), VmPanic> {
    contain_panics(|| Vm::run_program_warmth_cached(program, config, artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmKind;

    const LOOPY: &str = r#"
    class T {
        static void main() {
            int acc = 0;
            for (int i = 0; i < 100000; i++) { acc = acc + i; }
            println(acc);
        }
    }
    "#;

    fn compile(source: &str) -> BProgram {
        let mut program = cse_lang::parse(source).unwrap();
        cse_lang::typeck::check(&mut program).unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    #[test]
    fn normal_runs_pass_through() {
        let bc = compile(LOOPY);
        let supervised =
            supervised_run(&bc, VmConfig::correct(VmKind::HotSpotLike)).expect("no panic");
        let direct = Vm::run_program(&bc, VmConfig::correct(VmKind::HotSpotLike));
        assert_eq!(supervised.observable(), direct.observable());
        assert_eq!(supervised.output, direct.output);
    }

    #[test]
    fn chaos_panic_is_contained_and_reported() {
        let bc = compile(LOOPY);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.chaos_panic_at_ops = Some(1_000);
        let err = supervised_run(&bc, config).expect_err("chaos knob must panic");
        assert!(err.payload.contains("chaos"), "payload: {}", err.payload);
    }

    #[test]
    fn chaos_panic_is_deterministic() {
        let bc = compile(LOOPY);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.chaos_panic_at_ops = Some(5_000);
        let a = supervised_run(&bc, config.clone()).expect_err("panic");
        let b = supervised_run(&bc, config).expect_err("panic");
        assert_eq!(a, b);
    }

    #[test]
    fn runs_after_a_contained_panic_are_unaffected() {
        let bc = compile(LOOPY);
        let mut chaotic = VmConfig::correct(VmKind::HotSpotLike);
        chaotic.chaos_panic_at_ops = Some(1_000);
        supervised_run(&bc, chaotic).expect_err("panic");
        let clean = supervised_run(&bc, VmConfig::correct(VmKind::HotSpotLike)).expect("clean");
        assert!(clean.outcome.is_completed());
    }

    #[test]
    fn wall_clock_watchdog_ends_wedged_runs() {
        // Fuel high enough that the fuel budget never triggers; the
        // watchdog (zero wall-clock budget) must end the run instead.
        let source = r#"
        class T {
            static void main() {
                long acc = 0L;
                for (int i = 0; i < 1000000; i++) {
                    for (int j = 0; j < 1000000; j++) { acc = acc + 1L; }
                }
                println(acc);
            }
        }
        "#;
        let bc = compile(source);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.fuel = u64::MAX / 2;
        config.wall_clock_limit = Some(std::time::Duration::ZERO);
        let result = Vm::run_program(&bc, config);
        assert!(matches!(result.outcome, crate::Outcome::Timeout));
        assert!(result.stats.watchdog_fired);
    }

    #[test]
    fn watchdog_does_not_fire_within_budget() {
        let bc = compile(LOOPY);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.wall_clock_limit = Some(std::time::Duration::from_secs(3600));
        let result = Vm::run_program(&bc, config);
        assert!(result.outcome.is_completed());
        assert!(!result.stats.watchdog_fired);
    }
}
