//! The bytecode interpreter: the VM's temperature-`t0` execution engine.
//!
//! Besides executing bytecode, the interpreter is the profiler: it bumps
//! the method and back-edge counters of Definition 3.2, records branch and
//! switch profiles for tier-2 speculation, and triggers OSR compilation
//! when a back-edge counter crosses its threshold.

use cse_bytecode::{DInsn, ExcKind, MethodId};

use crate::config::Tier;
use crate::events::CompileReason;
use crate::jit::{self, IrOutcome};
use crate::value::Value;
use crate::{Exit, Frame, Vm};

impl Vm<'_> {
    /// Interprets `method` starting at `start_pc` with the given locals
    /// (used both for fresh calls and for de-optimization re-entry).
    pub(crate) fn interpret(
        &mut self,
        id: MethodId,
        locals: Vec<Value>,
        start_pc: u32,
    ) -> Result<Option<Value>, Exit> {
        self.depth += 1;
        let stack = self.vec_pool.pop().unwrap_or_default();
        self.frames.push(Frame { locals, stack });
        let frame_idx = self.frames.len() - 1;
        let result = self.interp_loop(id, frame_idx, start_pc);
        // Recycle the frame's two buffers: cleared first, so the pool never
        // holds live values (and thus never needs scanning by the GC).
        if let Some(frame) = self.frames.pop() {
            let Frame { mut locals, mut stack } = frame;
            locals.clear();
            stack.clear();
            self.vec_pool.push(locals);
            self.vec_pool.push(stack);
        }
        self.depth -= 1;
        result
    }

    /// Raises an exception at `pc`: transfers to a matching handler in this
    /// frame or reports the exception upward.
    fn dispatch_exception(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        pc: u32,
        kind: ExcKind,
        code: i32,
    ) -> Result<u32, Exit> {
        let method = self.program.method(id);
        for handler in &method.handlers {
            if pc >= handler.start && pc < handler.end {
                let target = handler.target;
                let save_slot = handler.save_slot;
                let frame = &mut self.frames[frame_idx];
                frame.stack.clear();
                if let Some(slot) = save_slot {
                    frame.locals[slot as usize] = Value::L(kind.pack(code));
                }
                return Ok(target);
            }
        }
        Err(Exit::Exception { kind, code })
    }

    #[allow(clippy::too_many_lines)]
    fn interp_loop(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        start_pc: u32,
    ) -> Result<Option<Value>, Exit> {
        let mut pc = start_pc;
        // One fetch table per activation: the decoded program is shared via
        // `Rc`, so `dm` borrows a local handle and never conflicts with the
        // `&mut self` uses in the arms below.
        let decoded = self.decoded();
        let dm = decoded.method(id);
        // Branch/switch profiles exist to steer compilation (speculation
        // and tier-up). When this run can never compile — JIT off and no
        // forced plan — skip the bookkeeping on the hot path entirely;
        // the profiles are not part of any observable output.
        let profiling = self.config.jit_enabled || self.config.plan.is_some();
        // Fast-path macros keep the dispatch loop readable without
        // borrowing `self` across helper calls.
        macro_rules! frame {
            () => {
                self.frames[frame_idx]
            };
        }
        macro_rules! raise {
            ($pc:expr, $kind:expr, $code:expr) => {{
                pc = self.dispatch_exception(id, frame_idx, $pc, $kind, $code)?;
                continue;
            }};
        }
        loop {
            self.burn(1)?;
            self.stats.interp_ops += 1;
            // Decoded instructions are `Copy`: the fetch is an indexed
            // load, never a clone (see `cse_bytecode::decoded`).
            let insn = dm.code[pc as usize];
            match insn {
                DInsn::IConst(v) => frame!().stack.push(Value::I(v)),
                DInsn::LConst(v) => frame!().stack.push(Value::L(v)),
                DInsn::SConst(sid) => {
                    // Literals are interned at decode time: a refcount bump,
                    // not a fresh allocation per execution.
                    let text = decoded.string(sid).clone();
                    frame!().stack.push(Value::S(text));
                }
                DInsn::NullConst => frame!().stack.push(Value::Null),
                DInsn::Load(slot) => {
                    let value = frame!().locals[slot as usize].clone();
                    frame!().stack.push(value);
                }
                DInsn::Store(slot) => {
                    let value = frame!().stack.pop().expect("verified");
                    frame!().locals[slot as usize] = value;
                }
                DInsn::Pop => {
                    frame!().stack.pop();
                }
                DInsn::Dup => {
                    let top = frame!().stack.last().expect("verified").clone();
                    frame!().stack.push(top);
                }
                DInsn::Dup2 => {
                    let len = frame!().stack.len();
                    let a = frame!().stack[len - 2].clone();
                    let b = frame!().stack[len - 1].clone();
                    frame!().stack.push(a);
                    frame!().stack.push(b);
                }
                DInsn::GetStatic { class, field } => {
                    let value = self.statics[class.0 as usize][field as usize].clone();
                    frame!().stack.push(value);
                }
                DInsn::PutStatic { class, field } => {
                    let value = frame!().stack.pop().expect("verified");
                    self.statics[class.0 as usize][field as usize] = value;
                }
                DInsn::GetField { field } => {
                    let obj = frame!().stack.pop().expect("verified");
                    match self.field_get(&obj, field) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::PutField { field } => {
                    let value = frame!().stack.pop().expect("verified");
                    let obj = frame!().stack.pop().expect("verified");
                    match self.field_put(&obj, field, value) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::NewObject(class) => match self.alloc_object(class) {
                    Ok(value) => frame!().stack.push(value),
                    Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                    Err(e) => return Err(e),
                },
                DInsn::NewArray(kind) => {
                    let len = frame!().stack.pop().expect("verified").as_i();
                    match self.alloc_array(kind, len) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::NewMultiArray { kind, dims } => {
                    let mut lens = vec![0i32; dims as usize];
                    for slot in lens.iter_mut().rev() {
                        *slot = frame!().stack.pop().expect("verified").as_i();
                    }
                    match self.alloc_multi(kind, &lens) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::ArrLoad(_) => {
                    let idx = frame!().stack.pop().expect("verified").as_i();
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_load(&arr, idx) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::ArrStore(_) => {
                    let value = frame!().stack.pop().expect("verified");
                    let idx = frame!().stack.pop().expect("verified").as_i();
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_store(&arr, idx, value) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::ArrLen => {
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_len(&arr) {
                        Ok(len) => frame!().stack.push(Value::I(len)),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                // ----- int arithmetic -----
                DInsn::IAdd
                | DInsn::ISub
                | DInsn::IMul
                | DInsn::IAnd
                | DInsn::IOr
                | DInsn::IXor
                | DInsn::IShl
                | DInsn::IShr
                | DInsn::IUshr => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    let r = match insn {
                        DInsn::IAdd => a.wrapping_add(b),
                        DInsn::ISub => a.wrapping_sub(b),
                        DInsn::IMul => a.wrapping_mul(b),
                        DInsn::IAnd => a & b,
                        DInsn::IOr => a | b,
                        DInsn::IXor => a ^ b,
                        DInsn::IShl => a.wrapping_shl(b as u32),
                        DInsn::IShr => a.wrapping_shr(b as u32),
                        DInsn::IUshr => ((a as u32).wrapping_shr(b as u32)) as i32,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::I(r));
                }
                DInsn::IDiv | DInsn::IRem => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    if b == 0 {
                        raise!(pc, ExcKind::Arithmetic, 0);
                    }
                    let r = if matches!(insn, DInsn::IDiv) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    frame!().stack.push(Value::I(r));
                }
                DInsn::INeg => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(a.wrapping_neg()));
                }
                // ----- long arithmetic -----
                DInsn::LAdd
                | DInsn::LSub
                | DInsn::LMul
                | DInsn::LAnd
                | DInsn::LOr
                | DInsn::LXor => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    let r = match insn {
                        DInsn::LAdd => a.wrapping_add(b),
                        DInsn::LSub => a.wrapping_sub(b),
                        DInsn::LMul => a.wrapping_mul(b),
                        DInsn::LAnd => a & b,
                        DInsn::LOr => a | b,
                        DInsn::LXor => a ^ b,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::L(r));
                }
                DInsn::LDiv | DInsn::LRem => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    if b == 0 {
                        raise!(pc, ExcKind::Arithmetic, 0);
                    }
                    let r = if matches!(insn, DInsn::LDiv) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    frame!().stack.push(Value::L(r));
                }
                DInsn::LShl | DInsn::LShr | DInsn::LUshr => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    let r = match insn {
                        DInsn::LShl => a.wrapping_shl(b as u32),
                        DInsn::LShr => a.wrapping_shr(b as u32),
                        DInsn::LUshr => ((a as u64).wrapping_shr(b as u32)) as i64,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::L(r));
                }
                DInsn::LNeg => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::L(a.wrapping_neg()));
                }
                // ----- conversions -----
                DInsn::I2L => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::L(i64::from(a)));
                }
                DInsn::L2I => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::I(a as i32));
                }
                DInsn::I2B => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(i32::from(a as i8)));
                }
                DInsn::I2S => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::str(a.to_string()));
                }
                DInsn::L2S => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::str(a.to_string()));
                }
                DInsn::Bool2S => {
                    let a = frame!().stack.pop().expect("verified").as_bool();
                    frame!().stack.push(Value::str(if a { "true" } else { "false" }));
                }
                // ----- comparisons -----
                DInsn::CmpBr { op, long_operands, want, target } => {
                    // The fused pair spans two bytecode instructions:
                    // account for the branch too, so fuel and op counts
                    // match unfused execution.
                    self.burn(1)?;
                    self.stats.interp_ops += 1;
                    let cond = if long_operands {
                        let b = frame!().stack.pop().expect("verified").as_l();
                        let a = frame!().stack.pop().expect("verified").as_l();
                        op.eval(a, b)
                    } else {
                        let b = frame!().stack.pop().expect("verified").as_i();
                        let a = frame!().stack.pop().expect("verified").as_i();
                        op.eval(a, b)
                    };
                    // The branch lives at `pc + 1`: profile and back-edge
                    // bookkeeping must use its pc, exactly as unfused.
                    let branch_pc = pc + 1;
                    if profiling {
                        self.profiles[id.0 as usize].record_branch(branch_pc, cond);
                    }
                    if cond == want {
                        if target <= branch_pc {
                            if let Some(new_pc) = self.back_edge(id, branch_pc, target)? {
                                return self.osr_execute(id, frame_idx, new_pc);
                            }
                        }
                        pc = target;
                    } else {
                        pc = branch_pc + 1;
                    }
                    continue;
                }
                DInsn::ICmp(op) => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(i32::from(op.eval(a, b))));
                }
                DInsn::LCmp(op) => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::I(i32::from(op.eval(a, b))));
                }
                DInsn::RefEq | DInsn::RefNe => {
                    let b = frame!().stack.pop().expect("verified");
                    let a = frame!().stack.pop().expect("verified");
                    let eq = a.ref_eq(&b);
                    let want = matches!(insn, DInsn::RefEq);
                    frame!().stack.push(Value::I(i32::from(eq == want)));
                }
                DInsn::SConcat => {
                    let b = frame!().stack.pop().expect("verified");
                    let a = frame!().stack.pop().expect("verified");
                    let joined = self.concat(&a, &b);
                    frame!().stack.push(joined);
                }
                // ----- control flow -----
                DInsn::Jump(target) => {
                    if target <= pc {
                        if let Some(new_pc) = self.back_edge(id, pc, target)? {
                            return self.osr_execute(id, frame_idx, new_pc);
                        }
                    }
                    pc = target;
                    continue;
                }
                DInsn::JumpIfTrue(target) | DInsn::JumpIfFalse(target) => {
                    let cond = frame!().stack.pop().expect("verified").as_bool();
                    if profiling {
                        self.profiles[id.0 as usize].record_branch(pc, cond);
                    }
                    let want = matches!(insn, DInsn::JumpIfTrue(_));
                    if cond == want {
                        if target <= pc {
                            if let Some(new_pc) = self.back_edge(id, pc, target)? {
                                return self.osr_execute(id, frame_idx, new_pc);
                            }
                        }
                        pc = target;
                        continue;
                    }
                }
                DInsn::TableSwitch { cases_start, cases_len, default } => {
                    let scrut = frame!().stack.pop().expect("verified").as_i();
                    let cases = dm.switch_cases(cases_start, cases_len);
                    let arm = cases.iter().position(|(label, _)| *label == scrut);
                    let target = match arm {
                        Some(i) => {
                            let case_target = cases[i].1;
                            if profiling {
                                self.profiles[id.0 as usize].record_switch(pc, i, cases.len());
                            }
                            case_target
                        }
                        None => {
                            if profiling {
                                let arm = usize::MAX;
                                self.profiles[id.0 as usize].record_switch(pc, arm, cases.len());
                            }
                            default
                        }
                    };
                    if target <= pc {
                        if let Some(new_pc) = self.back_edge(id, pc, target)? {
                            return self.osr_execute(id, frame_idx, new_pc);
                        }
                    }
                    pc = target;
                    continue;
                }
                // ----- calls -----
                DInsn::InvokeStatic(callee) | DInsn::InvokeInstance(callee) => {
                    let arg_slots = self.program.method(callee).arg_slots();
                    // Drain into a recycled buffer instead of `split_off`,
                    // which would allocate a fresh Vec for every call.
                    let mut args = self.vec_pool.pop().unwrap_or_default();
                    let split_at = frame!().stack.len() - arg_slots;
                    args.extend(frame!().stack.drain(split_at..));
                    if matches!(insn, DInsn::InvokeInstance(_)) && args[0].is_null() {
                        raise!(pc, ExcKind::NullPointer, 0);
                    }
                    match self.call_method(callee, args) {
                        Ok(Some(value)) => frame!().stack.push(value),
                        Ok(None) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                DInsn::Return => return Ok(None),
                DInsn::ReturnVal => {
                    let value = frame!().stack.pop().expect("verified");
                    return Ok(Some(value));
                }
                // ----- exceptions -----
                DInsn::ThrowUser => {
                    let code = frame!().stack.pop().expect("verified").as_i();
                    raise!(pc, ExcKind::User, code);
                }
                DInsn::Rethrow(slot) => {
                    let packed = frame!().locals[slot as usize].as_l();
                    let (kind, code) = ExcKind::unpack(packed);
                    raise!(pc, kind, code);
                }
                // ----- output -----
                DInsn::Println(kind) => {
                    let value = frame!().stack.pop().expect("verified");
                    self.print_value(kind, &value);
                }
                DInsn::Mute => self.mute_depth += 1,
                DInsn::Unmute => self.mute_depth = self.mute_depth.saturating_sub(1),
            }
            pc += 1;
        }
    }

    /// Handles a back-edge: bumps the counter and, when a threshold is
    /// crossed, OSR-compiles and transfers execution to compiled code.
    ///
    /// Returns `Ok(Some(header))` when an OSR transfer should happen at the
    /// given loop header, or `Ok(None)` to continue interpreting normally.
    fn back_edge(&mut self, id: MethodId, from: u32, to: u32) -> Result<Option<u32>, Exit> {
        let method = self.program.method(id);
        let Some(counter_idx) = method.back_edge_index(from, to) else {
            return Ok(None);
        };
        let counter = {
            let prof = &mut self.profiles[id.0 as usize];
            prof.backedges[counter_idx] += 1;
            prof.backedges[counter_idx]
        };
        if !self.config.jit_enabled || self.config.plan.is_some() {
            return Ok(None);
        }
        let prof = &self.profiles[id.0 as usize];
        if prof.compile_banned {
            return Ok(None);
        }
        // The hottest tier whose back-edge threshold the counter crossed.
        let mut target_tier = None;
        for t in 1..=(self.config.tiers.len() as u8) {
            if counter >= self.config.tiers[(t - 1) as usize].backedge {
                target_tier = Some(Tier(t));
            }
        }
        let Some(tier) = target_tier else {
            return Ok(None);
        };
        // Already OSR-compiled at (or beyond) this tier for this header?
        // `osr_execute` below will find it; recompiling is idempotent via
        // the code cache.
        if !jit::can_osr(self.program, id, to) {
            return Ok(None);
        }
        self.ensure_compiled(id, tier, Some(to), true, CompileReason::Osr { header: to })?;
        // A top-tier OSR compilation promotes the whole method (HotSpot
        // compiles the full method for OSR; later calls enter the hot code
        // at its head — the paper's "T.g() is also JIT-compiled at the L4
        // level").
        if tier == self.config.top_tier() && self.profiles[id.0 as usize].tier < tier {
            self.ensure_compiled(id, tier, None, true, CompileReason::Invocations)?;
            self.profiles[id.0 as usize].tier = tier;
        }
        Ok(Some(to))
    }

    /// Transfers the current interpreter frame into OSR-compiled code at
    /// loop header `header`. On de-optimization, resumes interpretation.
    fn osr_execute(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        header: u32,
    ) -> Result<Option<Value>, Exit> {
        {
            // Find the hottest compiled OSR variant for this header.
            let mut func = None;
            for t in (1..=self.config.tiers.len() as u8).rev() {
                if let Some(f) = self.compiled_code(id, Tier(t), Some(header)) {
                    func = Some(f);
                    break;
                }
            }
            let Some(func) = func else {
                // Deopt invalidated the code (or it never existed): resume
                // interpreting from the header.
                return self.interp_resume(id, frame_idx, header);
            };
            // Move the locals out instead of cloning the whole vector:
            // `run_ir` seeds its register frame (a GC root) from them
            // before anything can allocate, and every exit path below
            // either pops this frame or overwrites `locals` afresh.
            let locals = std::mem::take(&mut self.frames[frame_idx].locals);
            match jit::run_ir(self, &func, locals)? {
                IrOutcome::Return(value) => Ok(value),
                IrOutcome::Deopt { bc_pc, locals, reason } => {
                    self.deoptimize(id, func.tier, bc_pc, reason);
                    self.frames[frame_idx].locals = locals;
                    self.frames[frame_idx].stack.clear();
                    // Resume interpretation at the deopt point.
                    self.interp_resume(id, frame_idx, bc_pc)
                }
                IrOutcome::TierUp { bc_pc, locals } => {
                    // Hot loop wants a hotter tier: resume interpreting at
                    // the header; the next back-edge re-enters through the
                    // freshly promoted OSR compilation.
                    self.frames[frame_idx].locals = locals;
                    self.frames[frame_idx].stack.clear();
                    self.interp_resume(id, frame_idx, bc_pc)
                }
            }
        }
    }

    /// Continues interpreting the *current* frame at `pc` (after OSR exit
    /// or de-optimization) without pushing a new frame.
    fn interp_resume(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        pc: u32,
    ) -> Result<Option<Value>, Exit> {
        self.interp_loop(id, frame_idx, pc)
    }
}
