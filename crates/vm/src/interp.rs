//! The bytecode interpreter: the VM's temperature-`t0` execution engine.
//!
//! Besides executing bytecode, the interpreter is the profiler: it bumps
//! the method and back-edge counters of Definition 3.2, records branch and
//! switch profiles for tier-2 speculation, and triggers OSR compilation
//! when a back-edge counter crosses its threshold.

use cse_bytecode::{ExcKind, Insn, MethodId};

use crate::config::Tier;
use crate::events::CompileReason;
use crate::jit::{self, IrOutcome};
use crate::value::Value;
use crate::{Exit, Frame, Vm};

impl Vm<'_> {
    /// Interprets `method` starting at `start_pc` with the given locals
    /// (used both for fresh calls and for de-optimization re-entry).
    pub(crate) fn interpret(
        &mut self,
        id: MethodId,
        locals: Vec<Value>,
        start_pc: u32,
    ) -> Result<Option<Value>, Exit> {
        self.depth += 1;
        self.frames.push(Frame { locals, stack: Vec::new() });
        let frame_idx = self.frames.len() - 1;
        let result = self.interp_loop(id, frame_idx, start_pc);
        self.frames.pop();
        self.depth -= 1;
        result
    }

    /// Raises an exception at `pc`: transfers to a matching handler in this
    /// frame or reports the exception upward.
    fn dispatch_exception(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        pc: u32,
        kind: ExcKind,
        code: i32,
    ) -> Result<u32, Exit> {
        let method = self.program.method(id);
        for handler in &method.handlers {
            if pc >= handler.start && pc < handler.end {
                let target = handler.target;
                let save_slot = handler.save_slot;
                let frame = &mut self.frames[frame_idx];
                frame.stack.clear();
                if let Some(slot) = save_slot {
                    frame.locals[slot as usize] = Value::L(kind.pack(code));
                }
                return Ok(target);
            }
        }
        Err(Exit::Exception { kind, code })
    }

    #[allow(clippy::too_many_lines)]
    fn interp_loop(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        start_pc: u32,
    ) -> Result<Option<Value>, Exit> {
        let mut pc = start_pc;
        // Fast-path macros keep the dispatch loop readable without
        // borrowing `self` across helper calls.
        macro_rules! frame {
            () => {
                self.frames[frame_idx]
            };
        }
        macro_rules! raise {
            ($pc:expr, $kind:expr, $code:expr) => {{
                pc = self.dispatch_exception(id, frame_idx, $pc, $kind, $code)?;
                continue;
            }};
        }
        loop {
            self.burn(1)?;
            self.stats.interp_ops += 1;
            // The method body is immutable while running; cloning the insn
            // is cheap for all hot opcodes (jump targets, consts, slots).
            let insn = self.program.method(id).code[pc as usize].clone();
            match insn {
                Insn::IConst(v) => frame!().stack.push(Value::I(v)),
                Insn::LConst(v) => frame!().stack.push(Value::L(v)),
                Insn::SConst(sid) => {
                    let text: std::rc::Rc<str> =
                        self.program.strings[sid.0 as usize].as_str().into();
                    frame!().stack.push(Value::S(text));
                }
                Insn::NullConst => frame!().stack.push(Value::Null),
                Insn::Load(slot) => {
                    let value = frame!().locals[slot as usize].clone();
                    frame!().stack.push(value);
                }
                Insn::Store(slot) => {
                    let value = frame!().stack.pop().expect("verified");
                    frame!().locals[slot as usize] = value;
                }
                Insn::Pop => {
                    frame!().stack.pop();
                }
                Insn::Dup => {
                    let top = frame!().stack.last().expect("verified").clone();
                    frame!().stack.push(top);
                }
                Insn::Dup2 => {
                    let len = frame!().stack.len();
                    let a = frame!().stack[len - 2].clone();
                    let b = frame!().stack[len - 1].clone();
                    frame!().stack.push(a);
                    frame!().stack.push(b);
                }
                Insn::GetStatic { class, field } => {
                    let value = self.statics[class.0 as usize][field as usize].clone();
                    frame!().stack.push(value);
                }
                Insn::PutStatic { class, field } => {
                    let value = frame!().stack.pop().expect("verified");
                    self.statics[class.0 as usize][field as usize] = value;
                }
                Insn::GetField { field } => {
                    let obj = frame!().stack.pop().expect("verified");
                    match self.field_get(&obj, field) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::PutField { field } => {
                    let value = frame!().stack.pop().expect("verified");
                    let obj = frame!().stack.pop().expect("verified");
                    match self.field_put(&obj, field, value) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::NewObject(class) => match self.alloc_object(class) {
                    Ok(value) => frame!().stack.push(value),
                    Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                    Err(e) => return Err(e),
                },
                Insn::NewArray(kind) => {
                    let len = frame!().stack.pop().expect("verified").as_i();
                    match self.alloc_array(kind, len) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::NewMultiArray { kind, dims } => {
                    let mut lens = vec![0i32; dims as usize];
                    for slot in lens.iter_mut().rev() {
                        *slot = frame!().stack.pop().expect("verified").as_i();
                    }
                    match self.alloc_multi(kind, &lens) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::ArrLoad(_) => {
                    let idx = frame!().stack.pop().expect("verified").as_i();
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_load(&arr, idx) {
                        Ok(value) => frame!().stack.push(value),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::ArrStore(_) => {
                    let value = frame!().stack.pop().expect("verified");
                    let idx = frame!().stack.pop().expect("verified").as_i();
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_store(&arr, idx, value) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::ArrLen => {
                    let arr = frame!().stack.pop().expect("verified");
                    match self.arr_len(&arr) {
                        Ok(len) => frame!().stack.push(Value::I(len)),
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                // ----- int arithmetic -----
                Insn::IAdd
                | Insn::ISub
                | Insn::IMul
                | Insn::IAnd
                | Insn::IOr
                | Insn::IXor
                | Insn::IShl
                | Insn::IShr
                | Insn::IUshr => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    let r = match insn {
                        Insn::IAdd => a.wrapping_add(b),
                        Insn::ISub => a.wrapping_sub(b),
                        Insn::IMul => a.wrapping_mul(b),
                        Insn::IAnd => a & b,
                        Insn::IOr => a | b,
                        Insn::IXor => a ^ b,
                        Insn::IShl => a.wrapping_shl(b as u32),
                        Insn::IShr => a.wrapping_shr(b as u32),
                        Insn::IUshr => ((a as u32).wrapping_shr(b as u32)) as i32,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::I(r));
                }
                Insn::IDiv | Insn::IRem => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    if b == 0 {
                        raise!(pc, ExcKind::Arithmetic, 0);
                    }
                    let r = if matches!(insn, Insn::IDiv) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    frame!().stack.push(Value::I(r));
                }
                Insn::INeg => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(a.wrapping_neg()));
                }
                // ----- long arithmetic -----
                Insn::LAdd | Insn::LSub | Insn::LMul | Insn::LAnd | Insn::LOr | Insn::LXor => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    let r = match insn {
                        Insn::LAdd => a.wrapping_add(b),
                        Insn::LSub => a.wrapping_sub(b),
                        Insn::LMul => a.wrapping_mul(b),
                        Insn::LAnd => a & b,
                        Insn::LOr => a | b,
                        Insn::LXor => a ^ b,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::L(r));
                }
                Insn::LDiv | Insn::LRem => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    if b == 0 {
                        raise!(pc, ExcKind::Arithmetic, 0);
                    }
                    let r = if matches!(insn, Insn::LDiv) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    frame!().stack.push(Value::L(r));
                }
                Insn::LShl | Insn::LShr | Insn::LUshr => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    let r = match insn {
                        Insn::LShl => a.wrapping_shl(b as u32),
                        Insn::LShr => a.wrapping_shr(b as u32),
                        Insn::LUshr => ((a as u64).wrapping_shr(b as u32)) as i64,
                        _ => unreachable!(),
                    };
                    frame!().stack.push(Value::L(r));
                }
                Insn::LNeg => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::L(a.wrapping_neg()));
                }
                // ----- conversions -----
                Insn::I2L => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::L(i64::from(a)));
                }
                Insn::L2I => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::I(a as i32));
                }
                Insn::I2B => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(i32::from(a as i8)));
                }
                Insn::I2S => {
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::S(a.to_string().into()));
                }
                Insn::L2S => {
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::S(a.to_string().into()));
                }
                Insn::Bool2S => {
                    let a = frame!().stack.pop().expect("verified").as_bool();
                    frame!().stack.push(Value::S(if a { "true" } else { "false" }.into()));
                }
                // ----- comparisons -----
                Insn::ICmp(op) => {
                    let b = frame!().stack.pop().expect("verified").as_i();
                    let a = frame!().stack.pop().expect("verified").as_i();
                    frame!().stack.push(Value::I(i32::from(op.eval(a, b))));
                }
                Insn::LCmp(op) => {
                    let b = frame!().stack.pop().expect("verified").as_l();
                    let a = frame!().stack.pop().expect("verified").as_l();
                    frame!().stack.push(Value::I(i32::from(op.eval(a, b))));
                }
                Insn::RefEq | Insn::RefNe => {
                    let b = frame!().stack.pop().expect("verified");
                    let a = frame!().stack.pop().expect("verified");
                    let eq = a.ref_eq(&b);
                    let want = matches!(insn, Insn::RefEq);
                    frame!().stack.push(Value::I(i32::from(eq == want)));
                }
                Insn::SConcat => {
                    let b = frame!().stack.pop().expect("verified");
                    let a = frame!().stack.pop().expect("verified");
                    let joined = self.concat(&a, &b);
                    frame!().stack.push(joined);
                }
                // ----- control flow -----
                Insn::Jump(target) => {
                    if target <= pc {
                        if let Some(new_pc) = self.back_edge(id, pc, target)? {
                            return self.osr_execute(id, frame_idx, new_pc);
                        }
                    }
                    pc = target;
                    continue;
                }
                Insn::JumpIfTrue(target) | Insn::JumpIfFalse(target) => {
                    let cond = frame!().stack.pop().expect("verified").as_bool();
                    self.profiles[id.0 as usize].record_branch(pc, cond);
                    let want = matches!(insn, Insn::JumpIfTrue(_));
                    if cond == want {
                        if target <= pc {
                            if let Some(new_pc) = self.back_edge(id, pc, target)? {
                                return self.osr_execute(id, frame_idx, new_pc);
                            }
                        }
                        pc = target;
                        continue;
                    }
                }
                Insn::TableSwitch { ref cases, default } => {
                    let scrut = frame!().stack.pop().expect("verified").as_i();
                    let arm = cases.iter().position(|(label, _)| *label == scrut);
                    let target = match arm {
                        Some(i) => {
                            self.profiles[id.0 as usize].record_switch(pc, i);
                            cases[i].1
                        }
                        None => {
                            self.profiles[id.0 as usize].record_switch(pc, usize::MAX);
                            default
                        }
                    };
                    if target <= pc {
                        if let Some(new_pc) = self.back_edge(id, pc, target)? {
                            return self.osr_execute(id, frame_idx, new_pc);
                        }
                    }
                    pc = target;
                    continue;
                }
                // ----- calls -----
                Insn::InvokeStatic(callee) | Insn::InvokeInstance(callee) => {
                    let arg_slots = self.program.method(callee).arg_slots();
                    let split_at = frame!().stack.len() - arg_slots;
                    let args: Vec<Value> = frame!().stack.split_off(split_at);
                    if matches!(insn, Insn::InvokeInstance(_)) && args[0].is_null() {
                        raise!(pc, ExcKind::NullPointer, 0);
                    }
                    match self.call_method(callee, args) {
                        Ok(Some(value)) => frame!().stack.push(value),
                        Ok(None) => {}
                        Err(Exit::Exception { kind, code }) => raise!(pc, kind, code),
                        Err(e) => return Err(e),
                    }
                }
                Insn::Return => return Ok(None),
                Insn::ReturnVal => {
                    let value = frame!().stack.pop().expect("verified");
                    return Ok(Some(value));
                }
                // ----- exceptions -----
                Insn::ThrowUser => {
                    let code = frame!().stack.pop().expect("verified").as_i();
                    raise!(pc, ExcKind::User, code);
                }
                Insn::Rethrow(slot) => {
                    let packed = frame!().locals[slot as usize].as_l();
                    let (kind, code) = ExcKind::unpack(packed);
                    raise!(pc, kind, code);
                }
                // ----- output -----
                Insn::Println(kind) => {
                    let value = frame!().stack.pop().expect("verified");
                    self.print_value(kind, &value);
                }
                Insn::Mute => self.mute_depth += 1,
                Insn::Unmute => self.mute_depth = self.mute_depth.saturating_sub(1),
            }
            pc += 1;
        }
    }

    /// Handles a back-edge: bumps the counter and, when a threshold is
    /// crossed, OSR-compiles and transfers execution to compiled code.
    ///
    /// Returns `Ok(Some(header))` when an OSR transfer should happen at the
    /// given loop header, or `Ok(None)` to continue interpreting normally.
    fn back_edge(&mut self, id: MethodId, from: u32, to: u32) -> Result<Option<u32>, Exit> {
        let method = self.program.method(id);
        let Some(counter_idx) = method.back_edge_index(from, to) else {
            return Ok(None);
        };
        let counter = {
            let prof = &mut self.profiles[id.0 as usize];
            prof.backedges[counter_idx] += 1;
            prof.backedges[counter_idx]
        };
        if !self.config.jit_enabled || self.config.plan.is_some() {
            return Ok(None);
        }
        let prof = &self.profiles[id.0 as usize];
        if prof.compile_banned {
            return Ok(None);
        }
        // The hottest tier whose back-edge threshold the counter crossed.
        let mut target_tier = None;
        for t in 1..=(self.config.tiers.len() as u8) {
            if counter >= self.config.tiers[(t - 1) as usize].backedge {
                target_tier = Some(Tier(t));
            }
        }
        let Some(tier) = target_tier else {
            return Ok(None);
        };
        // Already OSR-compiled at (or beyond) this tier for this header?
        // `osr_execute` below will find it; recompiling is idempotent via
        // the code cache.
        if !jit::can_osr(self.program, id, to) {
            return Ok(None);
        }
        self.ensure_compiled(id, tier, Some(to), true, CompileReason::Osr { header: to })?;
        // A top-tier OSR compilation promotes the whole method (HotSpot
        // compiles the full method for OSR; later calls enter the hot code
        // at its head — the paper's "T.g() is also JIT-compiled at the L4
        // level").
        if tier == self.config.top_tier() && self.profiles[id.0 as usize].tier < tier {
            self.ensure_compiled(id, tier, None, true, CompileReason::Invocations)?;
            self.profiles[id.0 as usize].tier = tier;
        }
        Ok(Some(to))
    }

    /// Transfers the current interpreter frame into OSR-compiled code at
    /// loop header `header`. On de-optimization, resumes interpretation.
    fn osr_execute(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        header: u32,
    ) -> Result<Option<Value>, Exit> {
        {
            // Find the hottest compiled OSR variant for this header.
            let mut func = None;
            for t in (1..=self.config.tiers.len() as u8).rev() {
                if let Some(f) = self.compiled_code(id, Tier(t), Some(header)) {
                    func = Some(f);
                    break;
                }
            }
            let Some(func) = func else {
                // Deopt invalidated the code (or it never existed): resume
                // interpreting from the header.
                return self.interp_resume(id, frame_idx, header);
            };
            let locals = self.frames[frame_idx].locals.clone();
            match jit::run_ir(self, &func, locals)? {
                IrOutcome::Return(value) => Ok(value),
                IrOutcome::Deopt { bc_pc, locals, reason } => {
                    self.deoptimize(id, func.tier, bc_pc, reason);
                    self.frames[frame_idx].locals = locals;
                    self.frames[frame_idx].stack.clear();
                    // Resume interpretation at the deopt point.
                    self.interp_resume(id, frame_idx, bc_pc)
                }
                IrOutcome::TierUp { bc_pc, locals } => {
                    // Hot loop wants a hotter tier: resume interpreting at
                    // the header; the next back-edge re-enters through the
                    // freshly promoted OSR compilation.
                    self.frames[frame_idx].locals = locals;
                    self.frames[frame_idx].stack.clear();
                    self.interp_resume(id, frame_idx, bc_pc)
                }
            }
        }
    }

    /// Continues interpreting the *current* frame at `pc` (after OSR exit
    /// or de-optimization) without pushing a new frame.
    fn interp_resume(
        &mut self,
        id: MethodId,
        frame_idx: usize,
        pc: u32,
    ) -> Result<Option<Value>, Exit> {
        self.interp_loop(id, frame_idx, pc)
    }
}
