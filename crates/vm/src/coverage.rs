//! JIT-behavior coverage: a compact, deterministic record of which JIT
//! behaviors one execution exercised.
//!
//! Each interesting event — a (method, tier) compilation, an OSR entry,
//! a pipeline pass firing over a method, an inline edge installed, a
//! de-optimization — is encoded as a 64-bit *feature* and hashed into a
//! fixed-size bitmap ([`CoverageMap`]). The map rides on
//! [`crate::ExecStats`] so campaign drivers can merge per-run maps into
//! a global picture of the compilation space actually explored, and
//! steer future inputs toward uncovered cells (see
//! `cse_core::coverage`).
//!
//! # Determinism
//!
//! Features are built exclusively from content digests
//! ([`cse_bytecode::digest::MethodDigest::key`]), static pass-table
//! names, and deterministic run state (tier, bytecode pc, deopt
//! reason). No addresses, no timing, no iteration order — two runs of
//! the same program under the same [`crate::VmConfig`] produce
//! bit-identical maps on any host, which is what lets coverage-guided
//! campaigns keep the bit-identical-digest contract across worker
//! counts and kill/resume cycles.
//!
//! # Cost
//!
//! Collection is gated on `VmConfig::coverage`; when the flag is off no
//! feature is ever computed and the map stays all-zero (the flag is
//! part of the execution fingerprint, so memoized runs never leak maps
//! across the gate).

/// Number of `u64` words in a map: 64 words = 4096 cells.
pub const MAP_WORDS: usize = 64;

/// A fixed-size coverage bitmap: 4096 cells, one bit per cell.
///
/// Distinct features can collide on a cell (it is a hash map without
/// buckets); that loses a little discrimination but never determinism,
/// and 4096 cells comfortably hold the feature population of the fuzzed
/// corpus (hundreds of distinct features per campaign).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CoverageMap([u64; MAP_WORDS]);

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap([0; MAP_WORDS])
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageMap({} cells)", self.count())
    }
}

impl CoverageMap {
    /// Total number of cells.
    pub const CELLS: u32 = (MAP_WORDS * 64) as u32;

    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Marks the cell a feature hashes to.
    #[inline]
    pub fn insert(&mut self, feature: u64) {
        let cell = mix(feature) % u64::from(Self::CELLS);
        self.0[(cell / 64) as usize] |= 1u64 << (cell % 64);
    }

    /// Folds another map into this one.
    pub fn union(&mut self, other: &CoverageMap) {
        for (w, o) in self.0.iter_mut().zip(&other.0) {
            *w |= o;
        }
    }

    /// Number of covered cells.
    pub fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of cells covered here but not in `baseline`.
    pub fn new_bits(&self, baseline: &CoverageMap) -> u32 {
        self.0.iter().zip(&baseline.0).map(|(w, b)| (w & !b).count_ones()).sum()
    }

    /// Whether this map covers at least one cell `baseline` does not.
    pub fn covers_new(&self, baseline: &CoverageMap) -> bool {
        self.0.iter().zip(&baseline.0).any(|(w, b)| w & !b != 0)
    }

    /// Whether every cell covered here is also covered in `other`.
    pub fn is_subset(&self, other: &CoverageMap) -> bool {
        self.0.iter().zip(&other.0).all(|(w, o)| w & !o == 0)
    }

    /// Whether no cell is covered.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// The raw words, for serialization (checkpoints).
    pub fn words(&self) -> &[u64; MAP_WORDS] {
        &self.0
    }

    /// Rebuilds a map from serialized words.
    pub fn from_words(words: [u64; MAP_WORDS]) -> CoverageMap {
        CoverageMap(words)
    }
}

/// SplitMix64 finalizer: a strong, dependency-free 64-bit bit mixer
/// (`cse-vm` deliberately has no crate dependencies beyond the
/// substrate, so it cannot pull `cse-rng` in for this).
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for pass names and deopt reasons.
fn fnv_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Feature-kind tags keep the taxonomies from colliding structurally
// (two different kinds sharing operands still mix to different cells).
const TAG_COMPILE: u64 = 0x636f_6d70;
const TAG_OSR: u64 = 0x006f_7372;
const TAG_PASS: u64 = 0x7061_7373;
const TAG_INLINE: u64 = 0x696e_6c6e;
const TAG_DEOPT: u64 = 0x6465_6f70;

/// A (method, tier) compilation; OSR entries get their own sub-space.
pub fn feat_compile(method_key: u64, tier: u8, osr: bool) -> u64 {
    let tag = if osr { TAG_OSR } else { TAG_COMPILE };
    mix(tag ^ method_key.rotate_left(8) ^ u64::from(tier))
}

/// One pipeline pass running over a (method, tier) compilation.
pub fn feat_pass(method_key: u64, tier: u8, pass: &str) -> u64 {
    mix(TAG_PASS ^ method_key.rotate_left(8) ^ u64::from(tier) ^ fnv_str(pass).rotate_left(24))
}

/// An inline edge (caller, callee) installed at a tier.
pub fn feat_inline(caller_key: u64, callee_key: u64, tier: u8) -> u64 {
    mix(TAG_INLINE ^ caller_key.rotate_left(8) ^ callee_key.rotate_left(32) ^ u64::from(tier))
}

/// A de-optimization (guard taken) at a bytecode pc, keyed by reason.
pub fn feat_deopt(method_key: u64, tier: u8, bc_pc: u32, reason: &str) -> u64 {
    mix(TAG_DEOPT
        ^ method_key.rotate_left(8)
        ^ u64::from(tier)
        ^ (u64::from(bc_pc) << 16)
        ^ fnv_str(reason).rotate_left(40))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_union_count_are_consistent() {
        let mut a = CoverageMap::new();
        assert!(a.is_empty());
        a.insert(feat_compile(1, 1, false));
        a.insert(feat_compile(1, 1, false));
        assert_eq!(a.count(), 1, "re-inserting a feature covers no new cell");
        let mut b = CoverageMap::new();
        b.insert(feat_compile(2, 1, false));
        assert!(b.covers_new(&a));
        assert!(!b.is_subset(&a));
        let mut u = a;
        u.union(&b);
        assert!(a.is_subset(&u) && b.is_subset(&u));
        assert_eq!(u.new_bits(&a), 1);
        assert_eq!(u.count(), 2);
    }

    #[test]
    fn feature_kinds_do_not_alias() {
        // The same operands under different taxonomies must produce
        // different features (cell collisions are possible but the
        // feature values themselves must differ).
        let features = [
            feat_compile(7, 2, false),
            feat_compile(7, 2, true),
            feat_pass(7, 2, "gvn"),
            feat_pass(7, 2, "licm"),
            feat_inline(7, 7, 2),
            feat_deopt(7, 2, 0, "GuardFailed"),
        ];
        for (i, a) in features.iter().enumerate() {
            for b in &features[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn words_round_trip() {
        let mut a = CoverageMap::new();
        for k in 0..100 {
            a.insert(feat_compile(k, 1, false));
        }
        let b = CoverageMap::from_words(*a.words());
        assert_eq!(a, b);
    }
}
