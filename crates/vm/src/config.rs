//! VM configuration and the three production-VM profiles.

use crate::faults::{BugId, FaultInjector};
use crate::plan::ForcedPlan;

/// Which production JVM a VM instance emulates. The profiles differ in
/// tier structure, compilation thresholds, and (by default) which seeded
/// bugs are active — mirroring how the paper validates HotSpot, OpenJ9,
/// and ART as distinct targets (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmKind {
    /// Two JIT tiers (C1-like quick, C2-like optimizing) + speculation.
    HotSpotLike,
    /// Two JIT tiers with a different pass mix and GC interplay.
    OpenJ9Like,
    /// One optimizing method-JIT tier with higher thresholds.
    ArtLike,
}

impl std::fmt::Display for VmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmKind::HotSpotLike => write!(f, "HotSpot"),
            VmKind::OpenJ9Like => write!(f, "OpenJ9"),
            VmKind::ArtLike => write!(f, "ART"),
        }
    }
}

/// When the static IR verifier ([`crate::jit::verify`]) runs during a
/// compilation. Selected per [`VmConfig`]; the default comes from the
/// `CSE_VERIFY_IR` environment variable (`off`/`boundary`/`each`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyMode {
    /// No IR verification (zero overhead).
    #[default]
    Off,
    /// Verify at the pipeline boundaries only: once after `build()` and
    /// once after the last pass. Cheap enough for long campaigns.
    Boundary,
    /// Verify after `build()` and after *every* pass, attributing any
    /// defect to the pass that introduced it. Used in CI and triage.
    Each,
}

impl VerifyMode {
    /// Reads the mode from `CSE_VERIFY_IR`. Unset or `off` means [`Off`];
    /// an unrecognized value warns once and falls back to [`Off`] rather
    /// than tearing down a campaign.
    ///
    /// [`Off`]: VerifyMode::Off
    pub fn from_env() -> VerifyMode {
        match std::env::var("CSE_VERIFY_IR") {
            Ok(v) if v == "boundary" => VerifyMode::Boundary,
            Ok(v) if v == "each" => VerifyMode::Each,
            Ok(v) if v == "off" || v.is_empty() => VerifyMode::Off,
            Ok(v) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("[cse-vm] unknown CSE_VERIFY_IR={v:?}; expected off/boundary/each");
                });
                VerifyMode::Off
            }
            Err(_) => VerifyMode::Off,
        }
    }
}

impl std::fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyMode::Off => write!(f, "off"),
            VerifyMode::Boundary => write!(f, "boundary"),
            VerifyMode::Each => write!(f, "each"),
        }
    }
}

/// When the translation validator ([`crate::jit::tv`]) runs during a
/// compilation. Selected per [`VmConfig`]; the default comes from the
/// `CSE_TV` environment variable (`off`/`boundary`/`each`). Orthogonal to
/// [`VerifyMode`]: the static verifier proves the IR is *well-formed*,
/// the translation validator proves each pass *refined the semantics*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TvMode {
    /// No translation validation (zero overhead).
    #[default]
    Off,
    /// Validate once per compilation: the post-`build()` IR against the
    /// final pipeline output, under the weakest (guard-introducing)
    /// contract. Cheap enough for long campaigns.
    Boundary,
    /// Validate every pass against its own input, under that pass's
    /// declared refinement contract, attributing any divergence to the
    /// pass that introduced it. Used in CI and triage.
    Each,
}

impl TvMode {
    /// Reads the mode from `CSE_TV`. Unset or `off` means [`Off`]; an
    /// unrecognized value warns once and falls back to [`Off`] rather
    /// than tearing down a campaign.
    ///
    /// [`Off`]: TvMode::Off
    pub fn from_env() -> TvMode {
        match std::env::var("CSE_TV") {
            Ok(v) if v == "boundary" => TvMode::Boundary,
            Ok(v) if v == "each" => TvMode::Each,
            Ok(v) if v == "off" || v.is_empty() => TvMode::Off,
            Ok(v) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("[cse-vm] unknown CSE_TV={v:?}; expected off/boundary/each");
                });
                TvMode::Off
            }
            Err(_) => TvMode::Off,
        }
    }
}

impl std::fmt::Display for TvMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TvMode::Off => write!(f, "off"),
            TvMode::Boundary => write!(f, "boundary"),
            TvMode::Each => write!(f, "each"),
        }
    }
}

/// Reads a numeric budget override from the environment, once per
/// variable per process (the value is cached so hot campaign loops never
/// touch the environment). Unset means "use the built-in default"; a
/// non-numeric value warns once and is ignored rather than tearing down
/// a campaign — the same contract as [`VerifyMode::from_env`].
fn env_budget(cache: &'static std::sync::OnceLock<Option<u64>>, name: &'static str) -> Option<u64> {
    *cache.get_or_init(|| match std::env::var(name) {
        Ok(v) if v.is_empty() => None,
        Ok(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("[cse-vm] ignoring non-numeric {name}={v:?}");
                None
            }
        },
        Err(_) => None,
    })
}

/// `CSE_FUEL` override for [`VmConfig::fuel`] (unset = 40M ops).
fn fuel_from_env() -> Option<u64> {
    static CACHE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    env_budget(&CACHE, "CSE_FUEL")
}

/// `CSE_HEAP_LIMIT` override for [`VmConfig::max_heap_bytes`], in bytes.
fn heap_limit_from_env() -> Option<u64> {
    static CACHE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    env_budget(&CACHE, "CSE_HEAP_LIMIT")
}

/// `CSE_STACK_LIMIT` override for [`VmConfig::stack_limit`], in frames.
fn stack_limit_from_env() -> Option<u64> {
    static CACHE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    env_budget(&CACHE, "CSE_STACK_LIMIT")
}

/// A compilation tier (0 = interpreter). Tier numbers are the paper's
/// temperature levels `t_0 .. t_N` (Definition 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tier(pub u8);

impl Tier {
    pub const INTERP: Tier = Tier(0);
    pub const T1: Tier = Tier(1);
    pub const T2: Tier = Tier(2);
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Thresholds for one JIT tier (the paper's `Z_i` from Definition 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierThresholds {
    /// Method-counter threshold (`c_0` crossing `Z_i` triggers JIT).
    pub invocations: u64,
    /// Back-edge-counter threshold (crossing triggers OSR compilation).
    pub backedge: u64,
}

/// Full VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    pub kind: VmKind,
    /// Per-tier thresholds; `tiers[i]` guards `Tier(i + 1)`.
    pub tiers: Vec<TierThresholds>,
    /// Disables JIT/OSR entirely (`-Xint` analog).
    pub jit_enabled: bool,
    /// Step budget; exceeding it yields `Outcome::Timeout` (the paper's
    /// two-minute wall-clock cutoff, §4.3).
    pub fuel: u64,
    /// Run a GC after this many allocations (0 = only on demand).
    pub gc_interval: usize,
    /// Max simultaneously-live heap objects (1 GiB heap analog).
    pub max_objects: usize,
    /// Max simultaneously-live *logical heap bytes* (estimated per
    /// object). Exceeding it — after a last-chance collection — yields a
    /// graceful `Outcome::BudgetExceeded(Resource::HeapBytes)`, so a
    /// pathological mutant can bloat the guest heap without taking the
    /// host down. Default comes from `CSE_HEAP_LIMIT` (256 MiB unset).
    pub max_heap_bytes: usize,
    /// Max logical call depth before `StackOverflowError`.
    pub max_call_depth: usize,
    /// Hard harness cap on call depth, above `max_call_depth`. The
    /// interpreter recurses on the host stack, so a deep-recursion fuzz
    /// program with a raised `max_call_depth` could overflow the *host*
    /// stack; this budget ends the run first with a graceful
    /// `Outcome::BudgetExceeded(Resource::StackDepth)` (not a catchable
    /// guest exception). Default comes from `CSE_STACK_LIMIT` (512 unset).
    pub stack_limit: usize,
    /// Record a `MethodEntry` trace event per call (verbose; only for
    /// small programs / compilation-space enumeration).
    pub record_method_entries: bool,
    /// Maximum trace events retained (guards memory in fuzz campaigns).
    pub max_events: usize,
    /// Seeded bugs.
    pub faults: FaultInjector,
    /// Forced compilation plan (`LVM(P, φ)` from Definition 3.3); `None`
    /// means profile-driven tiering (the default JIT-trace).
    pub plan: Option<ForcedPlan>,
    /// Inline budget: callee bytecode length limit for tier-2 inlining.
    pub inline_limit: usize,
    /// Maximum deopts before a method is permanently interpreted.
    pub max_deopts_per_method: u32,
    /// Wall-clock watchdog: the second line of defense behind the fuel
    /// budget. A run exceeding this limit is forcibly ended with
    /// `Outcome::Timeout` and `stats.watchdog_fired` set, even if an
    /// execution-engine bug burns fuel more slowly than real time (or not
    /// at all). Checked cooperatively inside `burn`, so granularity is
    /// ~256k operations. `None` disables the watchdog.
    pub wall_clock_limit: Option<std::time::Duration>,
    /// Deterministic harness-fault injection: panic once total burned
    /// operations reach this threshold. Exists solely so supervision
    /// tests can exercise panic containment reproducibly; `None` (the
    /// default everywhere) never panics.
    pub chaos_panic_at_ops: Option<u64>,
    /// Static IR verification mode (see [`crate::jit::verify`]). Defaults
    /// to `CSE_VERIFY_IR` (off when unset). Verification never changes
    /// observable behavior; defects are reported out-of-band through
    /// `ExecutionResult::ir_verify` / `ExecStats::ir_verify_defects`.
    pub verify_ir: VerifyMode,
    /// Translation-validation mode (see [`crate::jit::tv`]). Defaults to
    /// `CSE_TV` (off when unset). Validation never changes observable
    /// behavior; defects are reported out-of-band through
    /// `ExecutionResult::tv` / `ExecStats::tv_defects`.
    pub tv: TvMode,
    /// Whether to record JIT-behavior coverage into
    /// `ExecStats::coverage` (see [`crate::coverage`]). Off by default
    /// and zero-cost when off: no feature is computed, no digest work
    /// is added. Collection never changes observable behavior; the flag
    /// still partitions the execution fingerprint so memoized replays
    /// carry coverage only when it was recorded.
    pub coverage: bool,
}

impl VmConfig {
    /// Baseline configuration for a VM kind with that kind's *default bug
    /// set seeded* (a realistic buggy production VM).
    pub fn for_kind(kind: VmKind) -> VmConfig {
        let mut config = VmConfig::correct(kind);
        config.faults = FaultInjector::with(BugId::default_set(kind));
        config
    }

    /// Same profile but with *no* seeded bugs (used for substrate
    /// soundness tests and as the differential reference).
    pub fn correct(kind: VmKind) -> VmConfig {
        let tiers = match kind {
            VmKind::HotSpotLike => vec![
                TierThresholds { invocations: 150, backedge: 600 },
                TierThresholds { invocations: 1200, backedge: 3500 },
            ],
            VmKind::OpenJ9Like => vec![
                TierThresholds { invocations: 120, backedge: 550 },
                TierThresholds { invocations: 1000, backedge: 3200 },
            ],
            VmKind::ArtLike => vec![TierThresholds { invocations: 2500, backedge: 2600 }],
        };
        VmConfig {
            kind,
            tiers,
            jit_enabled: true,
            fuel: fuel_from_env().unwrap_or(40_000_000),
            gc_interval: 4096,
            max_objects: 1_000_000,
            max_heap_bytes: heap_limit_from_env().unwrap_or(256 * 1024 * 1024) as usize,
            max_call_depth: 128,
            stack_limit: stack_limit_from_env().unwrap_or(512) as usize,
            record_method_entries: false,
            max_events: 100_000,
            faults: FaultInjector::none(),
            plan: None,
            inline_limit: 48,
            max_deopts_per_method: 3,
            wall_clock_limit: None,
            chaos_panic_at_ops: None,
            verify_ir: VerifyMode::from_env(),
            tv: TvMode::from_env(),
            coverage: false,
        }
    }

    /// Interpreter-only configuration (`-Xint`): the semantic reference.
    pub fn interpreter_only(kind: VmKind) -> VmConfig {
        let mut config = VmConfig::correct(kind);
        config.jit_enabled = false;
        config
    }

    /// The paper's "traditional approach" baseline: force every method to
    /// be JIT-compiled at the top tier before its first call
    /// (`-Xjit:count=0`, §4.3).
    pub fn force_compile_all(kind: VmKind) -> VmConfig {
        let mut config = VmConfig::for_kind(kind);
        let top = Tier(config.tiers.len() as u8);
        config.plan = Some(ForcedPlan::all(top));
        config
    }

    /// The top JIT tier of this configuration.
    pub fn top_tier(&self) -> Tier {
        Tier(self.tiers.len() as u8)
    }

    /// Replaces the fault set.
    pub fn with_faults(mut self, faults: FaultInjector) -> VmConfig {
        self.faults = faults;
        self
    }

    /// Replaces the forced plan.
    pub fn with_plan(mut self, plan: ForcedPlan) -> VmConfig {
        self.plan = Some(plan);
        self
    }

    /// Replaces the IR verification mode.
    pub fn with_verify_ir(mut self, mode: VerifyMode) -> VmConfig {
        self.verify_ir = mode;
        self
    }

    /// Replaces the translation-validation mode.
    pub fn with_tv(mut self, mode: TvMode) -> VmConfig {
        self.tv = mode;
        self
    }

    /// Enables or disables JIT-behavior coverage collection.
    pub fn with_coverage(mut self, on: bool) -> VmConfig {
        self.coverage = on;
        self
    }

    /// Fingerprint of every configuration facet that can influence an
    /// execution's observable behavior, trace events, or statistics.
    /// Execution memoization keys on this: two runs of the same program
    /// under configs with equal fingerprints are replays of each other.
    /// Deliberately *excludes* `wall_clock_limit` and `chaos_panic_at_ops`
    /// — runs under those knobs are non-deterministic or harness-fault
    /// experiments and are never memoized (the memo layer checks that
    /// separately).
    pub fn exec_fingerprint(&self) -> u64 {
        let mut fp = crate::profile::Fnv::new();
        fp.u64(match self.kind {
            VmKind::HotSpotLike => 1,
            VmKind::OpenJ9Like => 2,
            VmKind::ArtLike => 3,
        });
        fp.u64(self.tiers.len() as u64);
        for tier in &self.tiers {
            fp.u64(tier.invocations);
            fp.u64(tier.backedge);
        }
        fp.u64(u64::from(self.jit_enabled));
        fp.u64(self.fuel);
        fp.u64(self.gc_interval as u64);
        fp.u64(self.max_objects as u64);
        fp.u64(self.max_heap_bytes as u64);
        fp.u64(self.max_call_depth as u64);
        fp.u64(self.stack_limit as u64);
        fp.u64(u64::from(self.record_method_entries));
        fp.u64(self.max_events as u64);
        fp.u64(self.faults.fingerprint());
        match &self.plan {
            None => fp.u64(0),
            Some(plan) => {
                fp.u64(1);
                fp.u64(plan.fingerprint());
            }
        }
        fp.u64(self.inline_limit as u64);
        fp.u64(u64::from(self.max_deopts_per_method));
        fp.u64(match self.verify_ir {
            VerifyMode::Off => 0,
            VerifyMode::Boundary => 1,
            VerifyMode::Each => 2,
        });
        fp.u64(match self.tv {
            TvMode::Off => 0,
            TvMode::Boundary => 1,
            TvMode::Each => 2,
        });
        fp.u64(u64::from(self.coverage));
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_tiers() {
        assert_eq!(VmConfig::correct(VmKind::HotSpotLike).tiers.len(), 2);
        assert_eq!(VmConfig::correct(VmKind::OpenJ9Like).tiers.len(), 2);
        assert_eq!(VmConfig::correct(VmKind::ArtLike).tiers.len(), 1);
        assert_eq!(VmConfig::correct(VmKind::HotSpotLike).top_tier(), Tier::T2);
        assert_eq!(VmConfig::correct(VmKind::ArtLike).top_tier(), Tier::T1);
    }

    #[test]
    fn thresholds_increase_with_tier() {
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like] {
            let config = VmConfig::correct(kind);
            assert!(config.tiers[0].invocations < config.tiers[1].invocations);
            assert!(config.tiers[0].backedge < config.tiers[1].backedge);
        }
    }

    #[test]
    fn default_config_is_buggy_correct_is_not() {
        assert!(!VmConfig::for_kind(VmKind::OpenJ9Like).faults.is_empty());
        assert!(VmConfig::correct(VmKind::OpenJ9Like).faults.is_empty());
        assert!(!VmConfig::interpreter_only(VmKind::HotSpotLike).jit_enabled);
    }

    #[test]
    fn force_compile_all_sets_plan() {
        let config = VmConfig::force_compile_all(VmKind::OpenJ9Like);
        assert!(config.plan.is_some());
    }

    #[test]
    fn exec_fingerprint_covers_behavioral_facets() {
        let base = VmConfig::correct(VmKind::HotSpotLike);
        assert_eq!(
            base.exec_fingerprint(),
            VmConfig::correct(VmKind::HotSpotLike).exec_fingerprint()
        );
        assert_ne!(
            base.exec_fingerprint(),
            VmConfig::correct(VmKind::OpenJ9Like).exec_fingerprint()
        );
        assert_ne!(
            base.exec_fingerprint(),
            VmConfig::for_kind(VmKind::HotSpotLike).exec_fingerprint()
        );
        assert_ne!(
            base.exec_fingerprint(),
            VmConfig::interpreter_only(VmKind::HotSpotLike).exec_fingerprint()
        );
        assert_ne!(
            base.exec_fingerprint(),
            VmConfig::force_compile_all(VmKind::HotSpotLike).exec_fingerprint()
        );
        let mut fuel = base.clone();
        fuel.fuel += 1;
        assert_ne!(base.exec_fingerprint(), fuel.exec_fingerprint());
        let verify = base.clone().with_verify_ir(VerifyMode::Each);
        assert_ne!(base.exec_fingerprint(), verify.exec_fingerprint());
        let tv = base.clone().with_tv(TvMode::Each);
        assert_ne!(base.exec_fingerprint(), tv.exec_fingerprint());
        assert_ne!(
            base.clone().with_tv(TvMode::Boundary).exec_fingerprint(),
            tv.exec_fingerprint()
        );
        // Plans that pin different calls must not collide.
        let mut a = base.clone();
        let mut plan_a = crate::plan::ForcedPlan::selective();
        plan_a.set(cse_bytecode::MethodId(1), 0, crate::plan::ExecMode::Interpret);
        a.plan = Some(plan_a);
        let mut b = base.clone();
        let mut plan_b = crate::plan::ForcedPlan::selective();
        plan_b.set(cse_bytecode::MethodId(1), 1, crate::plan::ExecMode::Interpret);
        b.plan = Some(plan_b);
        assert_ne!(a.exec_fingerprint(), b.exec_fingerprint());
        // Watchdog / chaos knobs are deliberately outside the fingerprint.
        let mut chaos = base.clone();
        chaos.wall_clock_limit = Some(std::time::Duration::from_secs(1));
        chaos.chaos_panic_at_ops = Some(10);
        assert_eq!(base.exec_fingerprint(), chaos.exec_fingerprint());
    }
}
