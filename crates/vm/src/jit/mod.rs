//! The JIT compiler: bytecode → IR → optimization pipeline → evaluation.
//!
//! Tier pipelines follow the VM profiles:
//!
//! * **HotSpot-like t1 ("C1")**: copy propagation, constant folding, local
//!   value numbering, DCE. No inlining, no speculation.
//! * **HotSpot-like t2 ("C2")**: inlining and profile speculation at build
//!   time, then constant folding, local + dominator-scoped value
//!   numbering, LICM, global code motion, loop analysis, register
//!   allocation, code generation checks, DCE.
//! * **OpenJ9-like** mirrors the HotSpot tiers but runs value-propagation
//!   passes instead of HotSpot's constant propagation and skips GCM.
//! * **ART-like** has a single "OptimizingCompiler" tier with inlining.
//!
//! Each pass hosts the trigger logic of its injected bugs (see
//! [`crate::faults`]); a triggered compile-time bug aborts compilation
//! with a [`CrashInfo`] that the VM surfaces as a crash outcome, exactly
//! like a `guarantee()` failure inside a production JIT.

pub mod build;
pub mod cache;
pub mod cfg;
pub mod exec;
pub mod ir;
pub mod passes;
pub mod tv;
pub mod verify;

use cse_bytecode::{BProgram, MethodId};

use crate::config::{Tier, TvMode, VerifyMode, VmKind};
use crate::exec::{CrashInfo, CrashKind, CrashPhase};
use crate::faults::{BugId, FaultInjector};
use crate::profile::MethodProfile;

pub(crate) use build::can_osr;
pub use cache::{ProgramArtifacts, SharedArtifactCache};
pub(crate) use exec::run_ir;
pub use exec::IrOutcome;

/// Everything a compilation needs to see.
pub struct CompileCtx<'a> {
    pub program: &'a BProgram,
    pub profiles: &'a [MethodProfile],
    pub faults: &'a FaultInjector,
    pub kind: VmKind,
    pub tier: Tier,
    /// Whether to speculate from profiles (off for plan-forced compiles,
    /// mirroring `count=0` compilation without profile data).
    pub speculate: bool,
    pub inline_limit: usize,
    /// Whether an OSR body for this method is already installed
    /// (recompilation-interaction bug trigger).
    pub has_osr_code: bool,
    /// Static IR verification mode (see [`verify`]).
    pub verify: VerifyMode,
    /// Translation-validation mode (see [`tv`]).
    pub tv: TvMode,
    /// Bitmask (by `BugId` discriminant) of injected bugs whose trigger
    /// was *queried and found active* during this compilation. A bug
    /// absent from the mask provably cannot have influenced the compile,
    /// which lets attribution skip its ablation rerun. Stored with cached
    /// artifacts and replayed on hits.
    pub fired: std::cell::Cell<u64>,
}

impl CompileCtx<'_> {
    /// Whether this compilation runs the "optimizing" pipeline (HotSpot /
    /// OpenJ9 tier 2, or ART's single tier).
    pub fn optimizing(&self) -> bool {
        self.tier.0 >= 2 || self.kind == VmKind::ArtLike
    }

    /// Queries the fault injector, recording a firing in
    /// [`CompileCtx::fired`]. Every compile-time trigger site must go
    /// through this (not `faults.active` directly) so the fired mask
    /// stays complete.
    pub(crate) fn active(&self, bug: BugId) -> bool {
        let hit = self.faults.active(bug);
        if hit {
            self.fired.set(self.fired.get() | (1u64 << (bug as u64)));
        }
        hit
    }

    /// Raises an injected compile-time crash.
    pub(crate) fn crash(&self, bug: BugId, detail: impl Into<String>) -> CrashInfo {
        CrashInfo {
            bug,
            component: bug.component(),
            kind: CrashKind::AssertionFailure,
            phase: CrashPhase::Compiling,
            detail: detail.into(),
        }
    }
}

/// Compilation failure modes.
#[derive(Debug)]
pub enum CompileFail {
    /// An injected bug fired during compilation.
    Crash(CrashInfo),
    /// The requested OSR header cannot host an OSR entry (non-empty
    /// abstract stack); callers gate on the crate-internal `can_osr`.
    OsrUnsupported,
}

/// Compiles `method` at `ctx.tier`, optionally as an OSR variant entering
/// at loop header `osr`.
///
/// When `ctx.verify` is not [`VerifyMode::Off`], the IR is statically
/// verified (after `build()`, and per [`passes::run_pipeline`]'s mode
/// rules thereafter); when `ctx.tv` is not [`TvMode::Off`], each pass (or
/// the whole pipeline, in boundary mode) is additionally checked as a
/// semantic refinement of its input. Defects accumulate in `defects` /
/// `tv_defects` and never change the compilation result.
pub fn compile(
    ctx: &CompileCtx<'_>,
    method: MethodId,
    osr: Option<u32>,
    defects: &mut Vec<verify::IrVerifyError>,
    tv_defects: &mut Vec<tv::TvError>,
) -> Result<ir::IrFunc, CompileFail> {
    let mut func = build::build(ctx, method, osr)?;
    if ctx.verify != VerifyMode::Off {
        defects.extend(verify::check_func(&func, ctx.program, verify::PASS_BUILD));
    }
    // Boundary mode validates the whole pipeline as one refinement step:
    // snapshot the freshly built IR as the "before" side.
    let built = if ctx.tv == TvMode::Boundary { Some(func.clone()) } else { None };
    let has_long_ops =
        func.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i.op, ir::Op::BinL(..)));
    let profile = &ctx.profiles[method.0 as usize];
    let warm = profile.invocations >= 200 || profile.backedges.iter().any(|&c| c >= 200);
    // Recompilation-interaction bug: re-promoting a previously
    // de-optimized method that still has a live OSR body while lowering
    // long arithmetic (OpenJ9-like).
    if ctx.active(BugId::J9RecompOsrPromote)
        && ctx.tier.0 >= 2
        && osr.is_none()
        && ctx.has_osr_code
        && has_long_ops
        && profile.deopts >= 1
    {
        return Err(CompileFail::Crash(ctx.crash(
            BugId::J9RecompOsrPromote,
            format!(
                "promoting {} to {} over a live OSR body",
                ctx.program.qualified_name(method),
                ctx.tier
            ),
        )));
    }
    // Structural "ideal graph" assertions (HotSpot-like).
    if ctx.optimizing() {
        let loops = cfg::LoopForest::compute(&func);
        if ctx.active(BugId::HsGraphDeepLoops) && loops.max_depth() >= 4 {
            let has_switch_in_loop = func.blocks.iter().enumerate().any(|(b, block)| {
                matches!(block.term, ir::Term::Switch { .. }) && loops.depth(b as u32) >= 2
            });
            if has_switch_in_loop {
                return Err(CompileFail::Crash(ctx.crash(
                    BugId::HsGraphDeepLoops,
                    "ideal graph: loop tree too deep with switch",
                )));
            }
        }
        // The block budget only overflows once inlining has spliced callees
        // in (plain methods stay far below it).
        if ctx.active(BugId::HsGraphBlockBudget) && func.blocks.len() > 260 && func.frames.len() > 1
        {
            return Err(CompileFail::Crash(ctx.crash(
                BugId::HsGraphBlockBudget,
                format!("ideal graph: {} blocks", func.blocks.len()),
            )));
        }
        if ctx.active(BugId::J9OtherNestedTry) && nested_handler_depth(&func) >= 3 {
            return Err(CompileFail::Crash(ctx.crash(
                BugId::J9OtherNestedTry,
                "synchronization stub: deeply nested try regions",
            )));
        }
        // The ART asserts only reproduce on warm methods: the compiler
        // consults profile tables that cold (`count=0`) compilations leave
        // empty.
        if ctx.active(BugId::ArtOptCompHandlerAssert) && func.handlers.len() >= 6 && warm {
            return Err(CompileFail::Crash(
                ctx.crash(BugId::ArtOptCompHandlerAssert, "OptimizingCompiler: multiple handlers"),
            ));
        }
    }
    passes::run_pipeline(ctx, &mut func, defects, tv_defects).map_err(CompileFail::Crash)?;
    if ctx.verify == VerifyMode::Boundary {
        defects.extend(verify::check_func(&func, ctx.program, verify::PASS_PIPELINE_EXIT));
    }
    if let Some(built) = built {
        // The end-to-end pipeline must satisfy the weakest contract: any
        // pass may have folded control flow or strengthened guards.
        tv_defects.extend(tv::check_refinement(
            &built,
            &func,
            tv::PASS_PIPELINE,
            tv::TvContract::GuardIntroducing,
            ctx.program,
        ));
    }
    Ok(func)
}

/// Maximum nesting depth of frame-0 handler bc ranges (by containment).
fn nested_handler_depth(func: &ir::IrFunc) -> usize {
    let ranges: Vec<(u32, u32)> =
        func.handlers.iter().filter(|h| h.frame == 0).map(|h| (h.start_bc, h.end_bc)).collect();
    let mut max_depth = 0;
    for &(s, e) in &ranges {
        let depth = ranges.iter().filter(|&&(s2, e2)| s2 <= s && e <= e2).count();
        max_depth = max_depth.max(depth);
    }
    max_depth
}
