//! Dead-code elimination.
//!
//! Removes pure instructions whose results are never read, iterating to a
//! fixpoint. Writes to anchor registers are never removed: handler entry
//! and de-optimization rebuild interpreter state from them, so an anchor
//! write is observable even when no IR instruction reads it.

use std::collections::HashSet;

use crate::jit::ir::{IrFunc, Reg};
use crate::jit::tv::TvContract;

/// Removes only pure, unread, non-anchor definitions.
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// Runs DCE to a fixpoint.
pub fn run(func: &mut IrFunc) {
    let is_anchor =
        |r: Reg, anchors: &[(Reg, Reg)]| anchors.iter().any(|&(lo, hi)| r >= lo && r < hi);
    let anchors = func.anchor_limit_per_frame.clone();
    loop {
        let mut read: HashSet<Reg> = HashSet::new();
        for block in &func.blocks {
            for inst in &block.insts {
                read.extend(inst.op.sources());
            }
            read.extend(block.term.sources());
        }
        let mut removed = false;
        for block in &mut func.blocks {
            block.insts.retain(|inst| {
                let dead = match inst.dst {
                    Some(dst) => {
                        inst.op.is_pure() && !read.contains(&dst) && !is_anchor(dst, &anchors)
                    }
                    None => false,
                };
                if dead {
                    removed = true;
                }
                !dead
            });
        }
        if !removed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Tier;
    use crate::jit::ir::*;
    use cse_bytecode::MethodId;

    fn func_with(insts: Vec<Inst>, term: Term) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T1,
            blocks: vec![Block { insts, term }],
            num_regs: 16,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 2,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 2)],
        }
    }

    fn inst(dst: Option<Reg>, op: Op) -> Inst {
        Inst { dst, op, frame: 0, bc_pc: 0 }
    }

    #[test]
    fn removes_transitively_dead_chains() {
        let mut f = func_with(
            vec![
                inst(Some(4), Op::ConstI(1)),
                inst(Some(5), Op::BinI(BinKind::Add, 4, 4)), // only feeds r6
                inst(Some(6), Op::BinI(BinKind::Mul, 5, 5)), // never read
                inst(Some(7), Op::ConstI(9)),                // returned
            ],
            Term::Return(Some(7)),
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(f.blocks[0].insts[0].op, Op::ConstI(9));
    }

    #[test]
    fn keeps_anchor_writes_and_side_effects() {
        let mut f = func_with(
            vec![
                inst(Some(0), Op::ConstI(1)), // anchor write (local 0)
                inst(Some(4), Op::GetField { obj: 1, field: 0 }), // may throw
                inst(None, Op::Mute),
            ],
            Term::Return(None),
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }
}
