//! Value propagation (OpenJ9-style local and global VP).
//!
//! The legitimate analysis tracks simple value ranges (non-negativity of
//! unsigned shifts, array lengths) and folds comparisons the ranges
//! decide. Injected bugs hosted here:
//!
//! * [`BugId::J9LocalVpConstAssert`] — a block saturating the local
//!   constant table trips an assertion.
//! * [`BugId::J9GlobalVpShiftRange`] — `(x >>> c) > 0` (c ≥ 1 constant)
//!   is folded to `true`; the correct range fact is only `>= 0`.
//! * [`BugId::J9GlobalVpByteAssert`] — propagating a byte-narrowed value
//!   through a nested-loop anchor trips an assertion.

use std::collections::HashMap;

use cse_bytecode::CmpOp;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::LoopForest;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Local VP only rewrites pure comparisons the block's range facts
/// decide; no control flow or effects change.
pub const TV_CONTRACT_LOCAL: TvContract = TvContract::EffectPreserving;

/// Global VP folds comparisons (and thereby branches) on proven range
/// facts and may strengthen speculation guards.
pub const TV_CONTRACT_GLOBAL: TvContract = TvContract::GuardIntroducing;

/// Local value propagation: per-block range facts.
pub fn run_local(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    for block in &mut func.blocks {
        let mut const_regs = 0usize;
        // Registers known to be >= 0 within this block.
        let mut non_negative: HashMap<Reg, bool> = HashMap::new();
        for inst in &mut block.insts {
            if matches!(inst.op, Op::ConstI(_) | Op::ConstL(_)) {
                const_regs += 1;
            }
            if let Some(dst) = inst.dst {
                let fact = match &inst.op {
                    Op::ConstI(v) => *v >= 0,
                    Op::ArrLen(_) => true,
                    Op::BinI(BinKind::Ushr, _, c) => {
                        // `x >>> c` is non-negative whenever a *known*
                        // shift amount 1..=31 applies; without the
                        // constant we stay conservative.
                        non_negative.get(c).copied().unwrap_or(false)
                    }
                    Op::BinI(BinKind::And, a, b) => {
                        non_negative.get(a).copied().unwrap_or(false)
                            || non_negative.get(b).copied().unwrap_or(false)
                    }
                    _ => false,
                };
                non_negative.insert(dst, fact);
            }
        }
        if const_regs > 28 && ctx.active(BugId::J9LocalVpConstAssert) {
            return Err(ctx.crash(
                BugId::J9LocalVpConstAssert,
                format!("local VP: constant table overflow ({const_regs} entries)"),
            ));
        }
        // Range facts feed the global pass; the only local fold (compare
        // against a literal zero) is left to constfold, which actually
        // tracks zero-ness.
        let _ = non_negative;
    }
    Ok(())
}

/// Global value propagation: cross-block shift-range facts.
pub fn run_global(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    // Single-def registers produced by `x >>> c` with constant c >= 1.
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    let mut const_of: HashMap<Reg, i32> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some(dst) = inst.dst {
                *def_count.entry(dst).or_default() += 1;
                if let Op::ConstI(v) = inst.op {
                    const_of.insert(dst, v);
                }
            }
        }
    }
    let single = |r: Reg| def_count.get(&r).copied().unwrap_or(0) == 1;
    let mut ushr_regs: Vec<Reg> = Vec::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let (Some(dst), Op::BinI(BinKind::Ushr, _, c)) = (inst.dst, &inst.op) {
                if single(dst) && single(*c) {
                    if let Some(shift) = const_of.get(c) {
                        if (1..=31).contains(shift) {
                            ushr_regs.push(dst);
                        }
                    }
                }
            }
        }
    }
    // Injected byte-propagation assertion: nested-loop anchor receiving a
    // narrowed value.
    if ctx.active(BugId::J9GlobalVpByteAssert) {
        let forest = LoopForest::compute(func);
        for (b, block) in func.blocks.iter().enumerate() {
            if forest.depth(b as BlockId) < 2 {
                continue;
            }
            for inst in &block.insts {
                if let (Some(dst), Op::I2B(_)) = (inst.dst, &inst.op) {
                    if func.is_anchor(dst) {
                        return Err(ctx.crash(
                            BugId::J9GlobalVpByteAssert,
                            "global VP: byte phi through nested loop",
                        ));
                    }
                }
            }
        }
    }
    // The injected range bug: `(x >>> c) > 0` folded to true (correct
    // would be only `>= 0`). The fold sits on the profile-guided path:
    // range facts are seeded from profiling tables, so cold `count=0`
    // compiles never reach it.
    if ctx.active(BugId::J9GlobalVpShiftRange) && ctx.speculate {
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                if let Op::CmpI(CmpOp::Gt, a, b) = inst.op {
                    let b_zero = const_of.get(&b) == Some(&0);
                    if ushr_regs.contains(&a) && b_zero {
                        inst.op = Op::ConstI(1);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Tier, VmKind};
    use crate::faults::FaultInjector;
    use crate::profile::MethodProfile;
    use cse_bytecode::{BProgram, MethodId};

    fn tiny_program() -> BProgram {
        let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
        cse_bytecode::compile(&p).unwrap()
    }

    fn ctx<'a>(
        program: &'a BProgram,
        profiles: &'a [MethodProfile],
        faults: &'a FaultInjector,
    ) -> CompileCtx<'a> {
        CompileCtx {
            program,
            profiles,
            faults,
            kind: VmKind::OpenJ9Like,
            tier: Tier::T2,
            speculate: true,
            inline_limit: 48,
            has_osr_code: false,
            verify: crate::config::VerifyMode::Off,
            tv: crate::config::TvMode::Off,
            fired: std::cell::Cell::new(0),
        }
    }

    fn inst(dst: Option<Reg>, op: Op) -> Inst {
        Inst { dst, op, frame: 0, bc_pc: 0 }
    }

    fn one_block(insts: Vec<Inst>) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![Block { insts, term: Term::Return(None) }],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 2,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 2)],
        }
    }

    #[test]
    fn shift_range_bug_folds_gt_zero() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::J9GlobalVpShiftRange]);
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(Some(4), Op::ConstI(3)),
            inst(Some(5), Op::BinI(BinKind::Ushr, 0, 4)),
            inst(Some(6), Op::ConstI(0)),
            inst(Some(7), Op::CmpI(CmpOp::Gt, 5, 6)),
        ]);
        run_global(&c, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[3].op, Op::ConstI(1), "buggy fold fired");
        // Correct compiler leaves the comparison alone.
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(Some(4), Op::ConstI(3)),
            inst(Some(5), Op::BinI(BinKind::Ushr, 0, 4)),
            inst(Some(6), Op::ConstI(0)),
            inst(Some(7), Op::CmpI(CmpOp::Gt, 5, 6)),
        ]);
        run_global(&c, &mut f).unwrap();
        assert!(matches!(f.blocks[0].insts[3].op, Op::CmpI(..)));
    }

    #[test]
    fn const_table_assert_fires_on_saturated_block() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::J9LocalVpConstAssert]);
        let c = ctx(&program, &profiles, &faults);
        let insts: Vec<Inst> = (0..30).map(|i| inst(Some(4 + i), Op::ConstI(i as i32))).collect();
        let mut f = one_block(insts);
        let err = run_local(&c, &mut f).unwrap_err();
        assert_eq!(err.bug, BugId::J9LocalVpConstAssert);
    }
}
