//! Block-local constant propagation and folding.
//!
//! Tracks constant register contents within each block, folds pure
//! arithmetic, and collapses branches/switches on constant inputs.
//! Division and remainder fold only when the divisor is a non-zero
//! constant (the exception must otherwise still fire at runtime).
//!
//! Injected bugs hosted here:
//! * [`BugId::HsConstPropRemSign`] — folds `a % b` with a negative
//!   constant dividend using the Euclidean convention (wrong sign).
//! * [`BugId::ArtOptCompXorFold`] — folds `x ^ -1` to `-x` in blocks that
//!   also narrow to byte (ART's method-JIT).

use std::collections::HashMap;

use cse_bytecode::CmpOp;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Folding replaces conditional control on proven constants with
/// jumps; range speculation may strengthen guards.
pub const TV_CONTRACT: TvContract = TvContract::GuardIntroducing;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Const {
    I(i32),
    L(i64),
}

/// Runs the pass over every block.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    for block in &mut func.blocks {
        let has_i2b = block.insts.iter().any(|i| matches!(i.op, Op::I2B(_)));
        let mut consts: HashMap<Reg, Const> = HashMap::new();
        for inst in &mut block.insts {
            let folded = fold_op(ctx, &inst.op, &consts, has_i2b);
            if let Some(new_op) = folded {
                inst.op = new_op;
            }
            if let Some(dst) = inst.dst {
                match inst.op {
                    Op::ConstI(v) => {
                        consts.insert(dst, Const::I(v));
                    }
                    Op::ConstL(v) => {
                        consts.insert(dst, Const::L(v));
                    }
                    _ => {
                        consts.remove(&dst);
                    }
                }
            }
        }
        // Fold constant control flow.
        match &block.term {
            Term::Branch { cond, if_true, if_false } => {
                if let Some(Const::I(v)) = consts.get(cond) {
                    block.term = Term::Jump(if *v != 0 { *if_true } else { *if_false });
                }
            }
            Term::Switch { scrut, cases, default } => {
                if let Some(Const::I(v)) = consts.get(scrut) {
                    let target = cases
                        .iter()
                        .find(|(label, _)| label == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    block.term = Term::Jump(target);
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Folds one op against known constants; returns the replacement op.
fn fold_op(
    ctx: &CompileCtx<'_>,
    op: &Op,
    consts: &HashMap<Reg, Const>,
    block_has_i2b: bool,
) -> Option<Op> {
    let ci = |r: &Reg| match consts.get(r) {
        Some(Const::I(v)) => Some(*v),
        _ => None,
    };
    let cl = |r: &Reg| match consts.get(r) {
        Some(Const::L(v)) => Some(*v),
        _ => None,
    };
    match op {
        Op::BinI(kind, a, b) => {
            // ART injected bug: `x ^ -1` → `-x` near byte narrowing.
            if *kind == BinKind::Xor
                && ci(b) == Some(-1)
                && block_has_i2b
                && ctx.speculate
                && ctx.active(BugId::ArtOptCompXorFold)
            {
                return Some(Op::NegI(*a));
            }
            let (x, y) = (ci(a)?, ci(b)?);
            // HotSpot injected bug: Euclidean-sign remainder folding.
            if *kind == BinKind::Rem
                && y != 0
                && x < 0
                && ctx.optimizing()
                && ctx.active(BugId::HsConstPropRemSign)
            {
                return Some(Op::ConstI(x.rem_euclid(y)));
            }
            let v = match kind {
                BinKind::Add => x.wrapping_add(y),
                BinKind::Sub => x.wrapping_sub(y),
                BinKind::Mul => x.wrapping_mul(y),
                BinKind::Div if y != 0 => x.wrapping_div(y),
                BinKind::Rem if y != 0 => x.wrapping_rem(y),
                BinKind::Div | BinKind::Rem => return None,
                BinKind::Shl => x.wrapping_shl(y as u32),
                BinKind::Shr => x.wrapping_shr(y as u32),
                BinKind::Ushr => ((x as u32).wrapping_shr(y as u32)) as i32,
                BinKind::And => x & y,
                BinKind::Or => x | y,
                BinKind::Xor => x ^ y,
            };
            Some(Op::ConstI(v))
        }
        Op::BinL(kind, a, b) => {
            let x = cl(a)?;
            let v = match kind {
                BinKind::Shl | BinKind::Shr | BinKind::Ushr => {
                    let y = ci(b)?;
                    match kind {
                        BinKind::Shl => x.wrapping_shl(y as u32),
                        BinKind::Shr => x.wrapping_shr(y as u32),
                        _ => ((x as u64).wrapping_shr(y as u32)) as i64,
                    }
                }
                _ => {
                    let y = cl(b)?;
                    match kind {
                        BinKind::Add => x.wrapping_add(y),
                        BinKind::Sub => x.wrapping_sub(y),
                        BinKind::Mul => x.wrapping_mul(y),
                        BinKind::Div if y != 0 => x.wrapping_div(y),
                        BinKind::Rem if y != 0 => x.wrapping_rem(y),
                        BinKind::Div | BinKind::Rem => return None,
                        BinKind::And => x & y,
                        BinKind::Or => x | y,
                        BinKind::Xor => x ^ y,
                        _ => unreachable!(),
                    }
                }
            };
            Some(Op::ConstL(v))
        }
        Op::NegI(r) => Some(Op::ConstI(ci(r)?.wrapping_neg())),
        Op::NegL(r) => Some(Op::ConstL(cl(r)?.wrapping_neg())),
        Op::I2L(r) => Some(Op::ConstL(i64::from(ci(r)?))),
        Op::L2I(r) => Some(Op::ConstI(cl(r)? as i32)),
        Op::I2B(r) => Some(Op::ConstI(i32::from(ci(r)? as i8))),
        Op::CmpI(op, a, b) => Some(Op::ConstI(i32::from(eval_cmp(*op, ci(a)?, ci(b)?)))),
        Op::CmpL(op, a, b) => Some(Op::ConstI(i32::from(eval_cmp(*op, cl(a)?, cl(b)?)))),
        _ => None,
    }
}

fn eval_cmp<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    op.eval(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Tier, VmKind};
    use crate::faults::FaultInjector;
    use crate::profile::MethodProfile;
    use cse_bytecode::{BProgram, MethodId};

    fn test_ctx<'a>(
        program: &'a BProgram,
        profiles: &'a [MethodProfile],
        faults: &'a FaultInjector,
        kind: VmKind,
    ) -> CompileCtx<'a> {
        CompileCtx {
            program,
            profiles,
            faults,
            kind,
            tier: Tier::T2,
            speculate: true,
            inline_limit: 48,
            has_osr_code: false,
            verify: crate::config::VerifyMode::Off,
            tv: crate::config::TvMode::Off,
            fired: std::cell::Cell::new(0),
        }
    }

    fn tiny_program() -> BProgram {
        let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
        cse_bytecode::compile(&p).unwrap()
    }

    fn one_block(insts: Vec<Inst>, term: Term) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![Block { insts, term }],
            num_regs: 16,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 2,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 2)],
        }
    }

    fn inst(dst: Reg, op: Op) -> Inst {
        Inst { dst: Some(dst), op, frame: 0, bc_pc: 0 }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let ctx = test_ctx(&program, &profiles, &faults, VmKind::HotSpotLike);
        let mut f = one_block(
            vec![
                inst(2, Op::ConstI(6)),
                inst(3, Op::ConstI(7)),
                inst(4, Op::BinI(BinKind::Mul, 2, 3)),
                inst(5, Op::CmpI(CmpOp::Lt, 2, 3)),
            ],
            Term::Return(Some(4)),
        );
        run(&ctx, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[2].op, Op::ConstI(42));
        assert_eq!(f.blocks[0].insts[3].op, Op::ConstI(1));
    }

    #[test]
    fn never_folds_division_by_zero() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let ctx = test_ctx(&program, &profiles, &faults, VmKind::HotSpotLike);
        let mut f = one_block(
            vec![
                inst(2, Op::ConstI(6)),
                inst(3, Op::ConstI(0)),
                inst(4, Op::BinI(BinKind::Div, 2, 3)),
            ],
            Term::Return(Some(4)),
        );
        run(&ctx, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[2].op, Op::BinI(BinKind::Div, 2, 3));
    }

    #[test]
    fn folds_constant_branch() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let ctx = test_ctx(&program, &profiles, &faults, VmKind::HotSpotLike);
        let mut f = one_block(
            vec![inst(2, Op::ConstI(1))],
            Term::Branch { cond: 2, if_true: 0, if_false: 0 },
        );
        f.blocks.push(Block { insts: vec![], term: Term::Return(None) });
        f.blocks.push(Block { insts: vec![], term: Term::Return(None) });
        f.blocks[0].term = Term::Branch { cond: 2, if_true: 1, if_false: 2 };
        run(&ctx, &mut f).unwrap();
        assert_eq!(f.blocks[0].term, Term::Jump(1));
    }

    #[test]
    fn injected_rem_sign_bug_changes_fold() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let run_with = |faults: FaultInjector| {
            let ctx = test_ctx(&program, &profiles, &faults, VmKind::HotSpotLike);
            let mut f = one_block(
                vec![
                    inst(2, Op::ConstI(-7)),
                    inst(3, Op::ConstI(3)),
                    inst(4, Op::BinI(BinKind::Rem, 2, 3)),
                ],
                Term::Return(Some(4)),
            );
            run(&ctx, &mut f).unwrap();
            f.blocks[0].insts[2].op.clone()
        };
        assert_eq!(run_with(FaultInjector::none()), Op::ConstI(-1));
        assert_eq!(
            run_with(FaultInjector::with([BugId::HsConstPropRemSign])),
            Op::ConstI(2),
            "Euclidean remainder is the injected wrong answer"
        );
    }

    #[test]
    fn injected_xor_fold_bug_requires_byte_context() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::ArtOptCompXorFold]);
        let ctx = test_ctx(&program, &profiles, &faults, VmKind::ArtLike);
        // Without I2B in the block, the fold must not fire.
        let mut f = one_block(
            vec![inst(3, Op::ConstI(-1)), inst(4, Op::BinI(BinKind::Xor, 0, 3))],
            Term::Return(Some(4)),
        );
        run(&ctx, &mut f).unwrap();
        assert!(matches!(f.blocks[0].insts[1].op, Op::BinI(BinKind::Xor, ..)));
        // With I2B present, the buggy fold rewrites to negation.
        let mut f = one_block(
            vec![
                inst(3, Op::ConstI(-1)),
                inst(4, Op::BinI(BinKind::Xor, 0, 3)),
                inst(5, Op::I2B(4)),
            ],
            Term::Return(Some(5)),
        );
        run(&ctx, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[1].op, Op::NegI(0));
    }
}
