//! Value numbering: block-local CSE (`run_local`) and dominator-scoped
//! global value numbering (`run`).
//!
//! The global pass only numbers pure operations whose destination and
//! sources each have a *single static assignment* in the whole function
//! (cheaply giving SSA-like guarantees on the fixed-register IR); an
//! expression computed in a dominating block is then safely reusable.
//!
//! Injected bugs hosted here:
//! * [`BugId::HsGvnArrayAlias`] — array loads are CSE'd across a store to
//!   the same array when the store's index *register* differs from the
//!   load's (a wrong "cannot alias" test), yielding stale values.
//! * [`BugId::HsGvnTableAssert`] — the value table overflowing its budget
//!   while numbering long-typed expressions trips an assertion.

use std::collections::HashMap;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::Dominators;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Both the local and the dominator-scoped pass rewrite pure
/// expressions to earlier equal computations (shared by `gvn-local`
/// and `gvn`).
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// A canonical key for a pure expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(bool, BinKind, Reg, Reg),
    Neg(bool, Reg),
    Conv(u8, Reg),
    Cmp(bool, cse_bytecode::CmpOp, Reg, Reg),
    RefCmp(bool, Reg, Reg),
    Concat(Reg, Reg),
    ArrLoad(Reg, Reg),
    FieldLoad(Reg, u32),
}

/// Canonicalizes a pure op (commutative operands sorted); `None` when the
/// op is not CSE-able.
fn key_of(op: &Op) -> Option<Key> {
    Some(match op {
        Op::BinI(kind, a, b) if !kind.can_throw() => {
            let (a, b) = if kind.commutative() && a > b { (*b, *a) } else { (*a, *b) };
            Key::Bin(false, *kind, a, b)
        }
        Op::BinL(kind, a, b) if !kind.can_throw() => {
            let (a, b) = if kind.commutative() && a > b { (*b, *a) } else { (*a, *b) };
            Key::Bin(true, *kind, a, b)
        }
        Op::NegI(r) => Key::Neg(false, *r),
        Op::NegL(r) => Key::Neg(true, *r),
        Op::I2L(r) => Key::Conv(0, *r),
        Op::L2I(r) => Key::Conv(1, *r),
        Op::I2B(r) => Key::Conv(2, *r),
        Op::I2S(r) => Key::Conv(3, *r),
        Op::L2S(r) => Key::Conv(4, *r),
        Op::Bool2S(r) => Key::Conv(5, *r),
        Op::CmpI(c, a, b) => Key::Cmp(false, *c, *a, *b),
        Op::CmpL(c, a, b) => Key::Cmp(true, *c, *a, *b),
        Op::RefCmp { eq, a, b } => {
            let (a, b) = if a > b { (*b, *a) } else { (*a, *b) };
            Key::RefCmp(*eq, a, b)
        }
        Op::Concat(a, b) => Key::Concat(*a, *b),
        _ => return None,
    })
}

/// Block-local CSE, with invalidation on every register redefinition.
pub fn run_local(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    // The buggy alias filter sits on the profile-guided compilation path
    // only (`count=0` compiles take the conservative path), so forced
    // compilation cannot expose it — the warm-up dependence the paper
    // identifies in real JIT bugs.
    let alias_bug = ctx.active(BugId::HsGvnArrayAlias) && ctx.optimizing() && ctx.speculate;
    for block in &mut func.blocks {
        let mut table: HashMap<Key, Reg> = HashMap::new();
        for inst in &mut block.insts {
            let mut key = key_of(&inst.op);
            // Redundant field-load elimination: a field load repeats the
            // last load of the same (object register, field) when no
            // intervening write can alias it.
            if key.is_none() {
                match inst.op {
                    Op::GetField { obj, field } => key = Some(Key::FieldLoad(obj, field)),
                    // Injected alias bug: array loads become numberable
                    // too; the invalidation below is the (wrong) filter.
                    Op::ArrLoad { arr, idx, .. } if alias_bug => {
                        key = Some(Key::ArrLoad(arr, idx));
                    }
                    _ => {}
                }
            }
            // Memory writes invalidate load facts.
            match &inst.op {
                Op::ArrStore { arr, idx, .. } => {
                    let (sa, si) = (*arr, *idx);
                    table.retain(|k, _| match k {
                        Key::ArrLoad(la, li) => {
                            if alias_bug {
                                // Wrong: "different index register => no alias".
                                *la != sa || *li != si
                            } else {
                                false
                            }
                        }
                        _ => true,
                    });
                }
                Op::PutField { field, .. } => {
                    // A store to field f invalidates every load of f (the
                    // object registers might alias); array facts survive.
                    let f = *field;
                    table.retain(|k, _| !matches!(k, Key::FieldLoad(_, kf) if *kf == f));
                }
                Op::Call { .. } => {
                    table.retain(|k, _| !matches!(k, Key::ArrLoad(..) | Key::FieldLoad(..)));
                }
                op if op.is_memory_write() => {
                    table.retain(|k, _| !matches!(k, Key::ArrLoad(..)));
                }
                _ => {}
            }
            if let Some(dst) = inst.dst {
                if let Some(key) = key {
                    if let Some(&prev) = table.get(&key) {
                        if prev != dst {
                            inst.op = Op::Copy(prev);
                        }
                        invalidate(&mut table, dst);
                        continue;
                    }
                    invalidate(&mut table, dst);
                    if !key_sources(&key).contains(&dst) {
                        table.insert(key, dst);
                    }
                } else {
                    invalidate(&mut table, dst);
                }
            }
        }
    }
    Ok(())
}

fn key_sources(key: &Key) -> Vec<Reg> {
    match key {
        Key::Bin(_, _, a, b)
        | Key::Cmp(_, _, a, b)
        | Key::RefCmp(_, a, b)
        | Key::Concat(a, b)
        | Key::ArrLoad(a, b) => vec![*a, *b],
        Key::Neg(_, r) | Key::Conv(_, r) | Key::FieldLoad(r, _) => vec![*r],
    }
}

fn invalidate(table: &mut HashMap<Key, Reg>, written: Reg) {
    table.retain(|k, v| *v != written && !key_sources(k).contains(&written));
}

/// Dominator-scoped GVN over single-assignment registers.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    let def_counts = def_counts(func);
    let anchors = func.anchor_limit_per_frame.clone();
    // A register is *stable* when its value cannot change after its unique
    // definition: a non-anchor with at most one explicit def (never-defined
    // registers only ever hold their entry value), or an anchor that is
    // never reassigned (its single def is the frame entry).
    let single = move |r: Reg| {
        let defs = def_counts.get(&r).copied().unwrap_or(0);
        if anchors.iter().any(|&(lo, hi)| r >= lo && r < hi) {
            defs == 0
        } else {
            defs <= 1
        }
    };
    let doms = Dominators::compute(func);
    // Dominator-tree children.
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); func.blocks.len()];
    for b in 1..func.blocks.len() {
        let idom = doms.idom[b];
        if idom != u32::MAX && (idom as usize) != b {
            children[idom as usize].push(b as BlockId);
        }
    }
    let mut table: HashMap<Key, Reg> = HashMap::new();
    let mut max_table = 0usize;
    // Preorder DFS with an undo log for scoping.
    let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
    let mut undo: Vec<Key> = Vec::new();
    let mut visit_order: Vec<(BlockId, usize)> = Vec::new();
    while let Some((b, undo_mark)) = stack.pop() {
        // Roll back to this node's scope depth.
        while undo.len() > undo_mark {
            let key = undo.pop().expect("undo log tracked");
            table.remove(&key);
        }
        visit_order.push((b, undo.len()));
        for inst in &mut func.blocks[b as usize].insts {
            let Some(dst) = inst.dst else { continue };
            let Some(key) = key_of(&inst.op) else { continue };
            if !single(dst) || !key_sources(&key).iter().all(|&r| single(r)) {
                continue;
            }
            match table.get(&key) {
                Some(&prev) if prev != dst => {
                    inst.op = Op::Copy(prev);
                }
                Some(_) => {}
                None => {
                    table.insert(key.clone(), dst);
                    undo.push(key);
                    max_table = max_table.max(table.len());
                }
            }
        }
        for &child in &children[b as usize] {
            stack.push((child, undo.len()));
        }
    }
    if ctx.active(BugId::HsGvnTableAssert) && max_table > 100 {
        let has_long = func
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.op, Op::BinL(..) | Op::ConstL(_)));
        if has_long {
            return Err(ctx.crash(
                BugId::HsGvnTableAssert,
                format!("GVN value table overflow ({max_table} entries) with long nodes"),
            ));
        }
    }
    Ok(())
}

fn def_counts(func: &IrFunc) -> HashMap<Reg, u32> {
    let mut counts: HashMap<Reg, u32> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some(dst) = inst.dst {
                *counts.entry(dst).or_default() += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Tier, VmKind};
    use crate::faults::FaultInjector;
    use crate::profile::MethodProfile;
    use cse_bytecode::{ArrKind, BProgram, MethodId};

    fn tiny_program() -> BProgram {
        let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
        cse_bytecode::compile(&p).unwrap()
    }

    fn one_block(insts: Vec<Inst>) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![Block { insts, term: Term::Return(None) }],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 2,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 2)],
        }
    }

    fn inst(dst: Reg, op: Op) -> Inst {
        Inst { dst: Some(dst), op, frame: 0, bc_pc: 0 }
    }

    fn ctx<'a>(
        program: &'a BProgram,
        profiles: &'a [MethodProfile],
        faults: &'a FaultInjector,
    ) -> CompileCtx<'a> {
        CompileCtx {
            program,
            profiles,
            faults,
            kind: VmKind::HotSpotLike,
            tier: Tier::T2,
            speculate: true,
            inline_limit: 48,
            has_osr_code: false,
            verify: crate::config::VerifyMode::Off,
            tv: crate::config::TvMode::Off,
            fired: std::cell::Cell::new(0),
        }
    }

    #[test]
    fn local_cse_replaces_redundant_expression() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(4, Op::BinI(BinKind::Add, 0, 1)),
            inst(5, Op::BinI(BinKind::Add, 1, 0)), // commutative duplicate
        ]);
        run_local(&c, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[1].op, Op::Copy(4));
    }

    #[test]
    fn local_cse_invalidates_on_operand_redefinition() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(4, Op::BinI(BinKind::Add, 0, 1)),
            inst(0, Op::ConstI(9)),
            inst(5, Op::BinI(BinKind::Add, 0, 1)),
        ]);
        run_local(&c, &mut f).unwrap();
        assert!(matches!(f.blocks[0].insts[2].op, Op::BinI(BinKind::Add, 0, 1)));
    }

    #[test]
    fn array_loads_not_csed_without_bug() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(4, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
            inst(5, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
        ]);
        run_local(&c, &mut f).unwrap();
        assert!(matches!(f.blocks[0].insts[1].op, Op::ArrLoad { .. }));
    }

    #[test]
    fn injected_alias_bug_keeps_stale_load_across_store() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::HsGvnArrayAlias]);
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![
            inst(4, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
            // Store with a *different index register* — the buggy filter
            // concludes "no alias" even though values may match.
            Inst {
                dst: None,
                op: Op::ArrStore { kind: ArrKind::I32, arr: 0, idx: 6, val: 4 },
                frame: 0,
                bc_pc: 0,
            },
            inst(5, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
        ]);
        run_local(&c, &mut f).unwrap();
        assert_eq!(f.blocks[0].insts[2].op, Op::Copy(4), "stale CSE is the injected bug");
        // Same index register: correctly invalidated even with the bug.
        let mut f = one_block(vec![
            inst(4, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
            Inst {
                dst: None,
                op: Op::ArrStore { kind: ArrKind::I32, arr: 0, idx: 1, val: 4 },
                frame: 0,
                bc_pc: 0,
            },
            inst(5, Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
        ]);
        run_local(&c, &mut f).unwrap();
        assert!(matches!(f.blocks[0].insts[2].op, Op::ArrLoad { .. }));
    }

    #[test]
    fn global_gvn_reuses_across_dominating_blocks() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = one_block(vec![inst(4, Op::BinI(BinKind::Add, 0, 1))]);
        f.blocks[0].term = Term::Jump(1);
        f.blocks.push(Block {
            insts: vec![inst(5, Op::BinI(BinKind::Add, 0, 1))],
            term: Term::Return(Some(5)),
        });
        run(&c, &mut f).unwrap();
        assert_eq!(f.blocks[1].insts[0].op, Op::Copy(4));
    }

    #[test]
    fn global_gvn_respects_multiple_assignments() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        // Register 0 is written in block 1, so `0 + 1` cannot be reused.
        let mut f = one_block(vec![inst(4, Op::BinI(BinKind::Add, 0, 1))]);
        f.blocks[0].term = Term::Jump(1);
        f.blocks.push(Block {
            insts: vec![inst(0, Op::ConstI(3)), inst(5, Op::BinI(BinKind::Add, 0, 1))],
            term: Term::Return(Some(5)),
        });
        run(&c, &mut f).unwrap();
        assert!(matches!(f.blocks[1].insts[1].op, Op::BinI(BinKind::Add, 0, 1)));
    }
}
