//! Loop-invariant code motion.
//!
//! Correct behavior: pure, non-throwing, single-assignment instructions
//! whose operands are defined outside the loop hoist into a freshly
//! created preheader. Throwing operations (including field loads, which
//! may NPE) never hoist — except under the injected
//! [`BugId::HsLicmAliasedLoad`], which hoists a field load out of a loop
//! whose stores to the same field all sit inside `try` regions (the buggy
//! alias check ignores exceptional control flow), yielding stale reads.

use std::collections::{HashMap, HashSet};

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::LoopForest;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Hoists only pure, non-throwing computation into fresh pure
/// forwarding preheaders.
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// Runs LICM over every loop; the forest is re-discovered after each
/// preheader insertion (which invalidates block ids' loop membership).
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    let mut processed: HashSet<BlockId> = HashSet::new();
    loop {
        let forest = LoopForest::compute(func);
        let next = forest
            .loops
            .iter()
            .filter(|l| !processed.contains(&l.header))
            .max_by_key(|l| l.depth)
            .map(|l| (l.header, l.blocks.clone()));
        let Some((header, blocks)) = next else {
            return Ok(());
        };
        processed.insert(header);
        // Headers that double as exception-handler targets are left alone:
        // the handler edge would bypass a preheader.
        if func.handlers.iter().any(|h| h.target == header) {
            continue;
        }
        hoist_loop(ctx, func, &blocks, header);
    }
}

fn hoist_loop(ctx: &CompileCtx<'_>, func: &mut IrFunc, loop_blocks: &[BlockId], header: BlockId) {
    // Registers written anywhere inside the loop.
    let mut written: HashSet<Reg> = HashSet::new();
    // Memory facts needed by the (buggy) field-load hoist.
    let mut loop_has_call = false;
    // field index -> has a store *outside* any try region / *inside* one.
    let mut field_store_plain: HashSet<u32> = HashSet::new();
    let mut field_store_in_try: HashSet<u32> = HashSet::new();
    for &b in loop_blocks {
        for inst in &func.blocks[b as usize].insts {
            if let Some(dst) = inst.dst {
                written.insert(dst);
            }
            match &inst.op {
                Op::Call { .. } => loop_has_call = true,
                Op::PutField { field, .. } => {
                    let covered = func.handlers.iter().any(|h| {
                        h.frame == inst.frame && inst.bc_pc >= h.start_bc && inst.bc_pc < h.end_bc
                    });
                    if covered {
                        field_store_in_try.insert(*field);
                    } else {
                        field_store_plain.insert(*field);
                    }
                }
                _ => {}
            }
        }
    }
    // Global def counts (single-assignment check).
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some(dst) = inst.dst {
                *def_count.entry(dst).or_default() += 1;
            }
        }
    }
    let is_anchor =
        |r: Reg, anchors: &[(Reg, Reg)]| anchors.iter().any(|&(lo, hi)| r >= lo && r < hi);
    let alias_bug = ctx.active(BugId::HsLicmAliasedLoad) && ctx.optimizing();
    let anchors = func.anchor_limit_per_frame.clone();

    let mut hoisted: Vec<Inst> = Vec::new();
    for &b in loop_blocks {
        let block = &mut func.blocks[b as usize];
        let mut kept: Vec<Inst> = Vec::with_capacity(block.insts.len());
        for inst in block.insts.drain(..) {
            let hoistable = match inst.dst {
                Some(dst) => {
                    let single = def_count.get(&dst).copied().unwrap_or(0) == 1;
                    let invariant = inst.op.sources().iter().all(|s| !written.contains(s));
                    let movable = if inst.op.is_pure() {
                        true
                    } else if let Op::GetField { field, .. } = &inst.op {
                        // The injected alias bug: stores hidden inside try
                        // regions are ignored by the alias check.
                        alias_bug
                            && !loop_has_call
                            && field_store_in_try.contains(field)
                            && !field_store_plain.contains(field)
                    } else {
                        false
                    };
                    single && invariant && movable && !is_anchor(dst, &anchors)
                }
                None => false,
            };
            if hoistable {
                hoisted.push(inst);
            } else {
                kept.push(inst);
            }
        }
        block.insts = kept;
    }
    if hoisted.is_empty() {
        return;
    }
    insert_preheader(func, header, loop_blocks, hoisted);
}

/// Creates a preheader block in front of `header`, retargeting all
/// non-loop predecessors to it, and fills it with `insts`.
fn insert_preheader(func: &mut IrFunc, header: BlockId, loop_blocks: &[BlockId], insts: Vec<Inst>) {
    let pre = func.blocks.len() as BlockId;
    func.blocks.push(Block { insts, term: Term::Jump(header) });
    for b in 0..(func.blocks.len() - 1) as u32 {
        if loop_blocks.contains(&b) {
            continue;
        }
        match &mut func.blocks[b as usize].term {
            Term::Jump(t) if *t == header => *t = pre,
            Term::Branch { if_true, if_false, .. } => {
                if *if_true == header {
                    *if_true = pre;
                }
                if *if_false == header {
                    *if_false = pre;
                }
            }
            Term::Switch { cases, default, .. } => {
                for (_, t) in cases.iter_mut() {
                    if *t == header {
                        *t = pre;
                    }
                }
                if *default == header {
                    *default = pre;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Tier, VmKind};
    use crate::faults::FaultInjector;
    use crate::profile::MethodProfile;
    use cse_bytecode::{BProgram, MethodId};

    fn tiny_program() -> BProgram {
        let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
        cse_bytecode::compile(&p).unwrap()
    }

    fn ctx<'a>(
        program: &'a BProgram,
        profiles: &'a [MethodProfile],
        faults: &'a FaultInjector,
    ) -> CompileCtx<'a> {
        CompileCtx {
            program,
            profiles,
            faults,
            kind: VmKind::HotSpotLike,
            tier: Tier::T2,
            speculate: false,
            inline_limit: 48,
            has_osr_code: false,
            verify: crate::config::VerifyMode::Off,
            tv: crate::config::TvMode::Off,
            fired: std::cell::Cell::new(0),
        }
    }

    fn inst(dst: Reg, op: Op) -> Inst {
        Inst { dst: Some(dst), op, frame: 0, bc_pc: 5 }
    }

    /// CFG: 0 (entry) -> 1 (header) -> {2 (body) -> 1, 3 (exit)}.
    fn loop_func(body: Vec<Inst>) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![
                Block { insts: vec![], term: Term::Jump(1) },
                Block { insts: vec![], term: Term::Branch { cond: 0, if_true: 2, if_false: 3 } },
                Block { insts: body, term: Term::Jump(1) },
                Block { insts: vec![], term: Term::Return(None) },
            ],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 3,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 3)],
        }
    }

    #[test]
    fn hoists_invariant_pure_expression() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = loop_func(vec![inst(10, Op::BinI(BinKind::Add, 1, 2))]);
        run(&c, &mut f).unwrap();
        assert!(f.blocks[2].insts.is_empty(), "invariant add should move out");
        let pre = &f.blocks[4];
        assert_eq!(pre.insts.len(), 1);
        assert_eq!(pre.term, Term::Jump(1));
        // Entry now routes through the preheader.
        assert_eq!(f.blocks[0].term, Term::Jump(4));
        // The back edge still targets the header directly.
        assert_eq!(f.blocks[2].term, Term::Jump(1));
    }

    #[test]
    fn keeps_variant_and_throwing_instructions() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = loop_func(vec![
            inst(10, Op::BinI(BinKind::Add, 1, 10)), // self-dependent: variant
            inst(11, Op::GetField { obj: 1, field: 0 }), // throwing: never hoisted
            inst(12, Op::BinI(BinKind::Div, 1, 2)),  // may throw
        ]);
        run(&c, &mut f).unwrap();
        assert_eq!(f.blocks[2].insts.len(), 3);
    }

    #[test]
    fn injected_alias_bug_hoists_field_load_over_try_store() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::HsLicmAliasedLoad]);
        let c = ctx(&program, &profiles, &faults);
        let store =
            Inst { dst: None, op: Op::PutField { obj: 1, field: 0, val: 2 }, frame: 0, bc_pc: 7 };
        let mut f = loop_func(vec![inst(10, Op::GetField { obj: 1, field: 0 }), store.clone()]);
        // The store at bc 7 sits inside a try region.
        f.handlers.push(IrHandler { frame: 0, start_bc: 6, end_bc: 9, target: 3, save_reg: None });
        run(&c, &mut f).unwrap();
        assert!(
            f.blocks[2].insts.iter().all(|i| !matches!(i.op, Op::GetField { .. })),
            "buggy pass hoists the load"
        );
        // Without the bug the load stays put.
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = loop_func(vec![inst(10, Op::GetField { obj: 1, field: 0 }), store]);
        f.handlers.push(IrHandler { frame: 0, start_bc: 6, end_bc: 9, target: 3, save_reg: None });
        run(&c, &mut f).unwrap();
        assert!(f.blocks[2].insts.iter().any(|i| matches!(i.op, Op::GetField { .. })));
    }
}
