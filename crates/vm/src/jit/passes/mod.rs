//! The optimization pass pipelines.
//!
//! Pass order follows the profile descriptions in [`super`]: cheap
//! cleanups first (the IR builder emits copy-heavy code by design), then
//! value numbering, code motion, loop analyses, register allocation, and
//! code-generation lowering checks, with dead-code elimination last.
//! Passes host the trigger logic of the injected bugs whose component
//! they implement.

pub mod codegen;
pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gcm;
pub mod gvn;
pub mod licm;
pub mod loopopt;
pub mod regalloc;
pub mod vp;

use super::ir::IrFunc;
use super::CompileCtx;
use crate::config::VmKind;
use crate::exec::CrashInfo;

/// Runs the pipeline for `ctx.kind` / `ctx.tier` over `func` in place.
pub fn run_pipeline(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    match (ctx.kind, ctx.optimizing()) {
        (VmKind::HotSpotLike, false) => {
            // C1: quick tier.
            copyprop::run(func);
            constfold::run(ctx, func)?;
            gvn::run_local(ctx, func)?;
            dce::run(func);
        }
        (VmKind::HotSpotLike, true) => {
            // C2: optimizing tier. Cleanup passes run twice: value
            // numbering introduces copies that expose further local CSE
            // (classic iterate-to-fixpoint, bounded to two rounds).
            copyprop::run(func);
            constfold::run(ctx, func)?;
            gvn::run_local(ctx, func)?;
            copyprop::run(func);
            gvn::run_local(ctx, func)?;
            gvn::run(ctx, func)?;
            licm::run(ctx, func)?;
            gcm::run(ctx, func)?;
            loopopt::run(ctx, func)?;
            regalloc::run(ctx, func)?;
            codegen::run(ctx, func)?;
            dce::run(func);
        }
        (VmKind::OpenJ9Like, false) => {
            copyprop::run(func);
            vp::run_local(ctx, func)?;
            gvn::run_local(ctx, func)?;
            dce::run(func);
        }
        (VmKind::OpenJ9Like, true) => {
            copyprop::run(func);
            vp::run_local(ctx, func)?;
            vp::run_global(ctx, func)?;
            constfold::run(ctx, func)?;
            gvn::run_local(ctx, func)?;
            copyprop::run(func);
            gvn::run_local(ctx, func)?;
            gvn::run(ctx, func)?;
            licm::run(ctx, func)?;
            loopopt::run(ctx, func)?;
            regalloc::run(ctx, func)?;
            codegen::run(ctx, func)?;
            dce::run(func);
        }
        (VmKind::ArtLike, _) => {
            // The single "OptimizingCompiler" tier.
            copyprop::run(func);
            constfold::run(ctx, func)?;
            gvn::run_local(ctx, func)?;
            licm::run(ctx, func)?;
            codegen::run(ctx, func)?;
            dce::run(func);
        }
    }
    Ok(())
}
