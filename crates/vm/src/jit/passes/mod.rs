//! The optimization pass pipelines.
//!
//! Pass order follows the profile descriptions in [`super`]: cheap
//! cleanups first (the IR builder emits copy-heavy code by design), then
//! value numbering, code motion, loop analyses, register allocation, and
//! code-generation lowering checks, with dead-code elimination last.
//! Passes host the trigger logic of the injected bugs whose component
//! they implement.
//!
//! Each pipeline is a *named pass table* rather than a call sequence, so
//! the pass-boundary verifier ([`super::verify`]) can attribute a defect
//! to the pass that introduced it, and tools can enumerate the pipeline a
//! configuration will run.

pub mod codegen;
pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gcm;
pub mod gvn;
pub mod licm;
pub mod loopopt;
pub mod regalloc;
pub mod vp;

use super::ir::IrFunc;
use super::tv::{self, TvContract};
use super::{verify, CompileCtx};
use crate::config::{TvMode, VerifyMode, VmKind};
use crate::exec::CrashInfo;

/// One pipeline stage: fallible in-place IR transform.
pub type PassFn = fn(&CompileCtx<'_>, &mut IrFunc) -> Result<(), CrashInfo>;

/// A named pipeline stage.
pub type Pass = (&'static str, PassFn);

fn run_copyprop(_: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    copyprop::run(func);
    Ok(())
}

fn run_dce(_: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    dce::run(func);
    Ok(())
}

/// HotSpot C1: quick tier.
const HOTSPOT_QUICK: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("dce", run_dce),
];

/// HotSpot C2: optimizing tier. Cleanup passes run twice: value numbering
/// introduces copies that expose further local CSE (classic
/// iterate-to-fixpoint, bounded to two rounds).
const HOTSPOT_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("copyprop", run_copyprop),
    ("gvn-local", gvn::run_local),
    ("gvn", gvn::run),
    ("licm", licm::run),
    ("gcm", gcm::run),
    ("loopopt", loopopt::run),
    ("regalloc", regalloc::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

const OPENJ9_QUICK: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("vp-local", vp::run_local),
    ("gvn-local", gvn::run_local),
    ("dce", run_dce),
];

const OPENJ9_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("vp-local", vp::run_local),
    ("vp-global", vp::run_global),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("copyprop", run_copyprop),
    ("gvn-local", gvn::run_local),
    ("gvn", gvn::run),
    ("licm", licm::run),
    ("loopopt", loopopt::run),
    ("regalloc", regalloc::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

/// ART's single "OptimizingCompiler" tier.
const ART_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("licm", licm::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

/// The pass table a VM kind runs at the given optimization level.
pub fn pipeline(kind: VmKind, optimizing: bool) -> &'static [Pass] {
    match (kind, optimizing) {
        (VmKind::HotSpotLike, false) => HOTSPOT_QUICK,
        (VmKind::HotSpotLike, true) => HOTSPOT_OPT,
        (VmKind::OpenJ9Like, false) => OPENJ9_QUICK,
        (VmKind::OpenJ9Like, true) => OPENJ9_OPT,
        (VmKind::ArtLike, _) => ART_OPT,
    }
}

/// The refinement contract a registered pass declared (see
/// [`TvContract`]). Every pass in every pipeline table must resolve here
/// — a completeness unit test enforces it, so new passes can't silently
/// opt out of translation validation.
pub fn tv_contract(pass: &'static str) -> Option<TvContract> {
    Some(match pass {
        "copyprop" => copyprop::TV_CONTRACT,
        "constfold" => constfold::TV_CONTRACT,
        "gvn-local" | "gvn" => gvn::TV_CONTRACT,
        "licm" => licm::TV_CONTRACT,
        "gcm" => gcm::TV_CONTRACT,
        "loopopt" => loopopt::TV_CONTRACT,
        "regalloc" => regalloc::TV_CONTRACT,
        "codegen" => codegen::TV_CONTRACT,
        "dce" => dce::TV_CONTRACT,
        "vp-local" => vp::TV_CONTRACT_LOCAL,
        "vp-global" => vp::TV_CONTRACT_GLOBAL,
        _ => return None,
    })
}

/// Runs the pipeline for `ctx.kind` / `ctx.tier` over `func` in place.
///
/// In [`VerifyMode::Each`] the IR is statically verified after every
/// pass; in [`TvMode::Each`] every (before, after) pair is additionally
/// checked against the pass's declared refinement contract. Defects
/// (attributed to the pass's table name) accumulate in `defects` /
/// `tv_defects` without altering compilation — both checkers are
/// oracles, not gates.
pub fn run_pipeline(
    ctx: &CompileCtx<'_>,
    func: &mut IrFunc,
    defects: &mut Vec<verify::IrVerifyError>,
    tv_defects: &mut Vec<tv::TvError>,
) -> Result<(), CrashInfo> {
    let snapshot = ctx.verify == VerifyMode::Each || ctx.tv == TvMode::Each;
    for (name, pass) in pipeline(ctx.kind, ctx.optimizing()) {
        let before = if snapshot { Some(func.clone()) } else { None };
        pass(ctx, func)?;
        if ctx.verify == VerifyMode::Each {
            let pre_ir = before.as_ref().map(IrFunc::pretty);
            defects.extend(verify::check_func(func, ctx.program, name).into_iter().map(|mut e| {
                e.pre_ir = pre_ir.clone();
                e
            }));
        }
        if ctx.tv == TvMode::Each {
            let contract = tv_contract(name)
                .unwrap_or_else(|| panic!("pass `{name}` has no TV refinement annotation"));
            let before = before.as_ref().expect("snapshot taken when tv == Each");
            tv_defects.extend(tv::check_refinement(before, func, name, contract, ctx.program));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pass registered in any pipeline table must carry a TV
    /// refinement annotation (tentpole completeness gate: new passes
    /// can't silently opt out of translation validation).
    #[test]
    fn every_registered_pass_has_a_tv_contract() {
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            for optimizing in [false, true] {
                for (name, _) in pipeline(kind, optimizing) {
                    assert!(
                        tv_contract(name).is_some(),
                        "pass `{name}` ({kind:?}, optimizing={optimizing}) lacks a TV contract"
                    );
                }
            }
        }
    }

    /// The layout-only (weaker, renaming-based) check is reserved for the
    /// two location-assignment stages; every semantic optimization gets
    /// the full simulation relation.
    #[test]
    fn layout_only_is_limited_to_location_passes() {
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            for optimizing in [false, true] {
                for (name, _) in pipeline(kind, optimizing) {
                    let layout = tv_contract(name) == Some(TvContract::LayoutOnly);
                    assert_eq!(layout, matches!(*name, "regalloc" | "codegen"), "pass `{name}`");
                }
            }
        }
    }
}
