//! The optimization pass pipelines.
//!
//! Pass order follows the profile descriptions in [`super`]: cheap
//! cleanups first (the IR builder emits copy-heavy code by design), then
//! value numbering, code motion, loop analyses, register allocation, and
//! code-generation lowering checks, with dead-code elimination last.
//! Passes host the trigger logic of the injected bugs whose component
//! they implement.
//!
//! Each pipeline is a *named pass table* rather than a call sequence, so
//! the pass-boundary verifier ([`super::verify`]) can attribute a defect
//! to the pass that introduced it, and tools can enumerate the pipeline a
//! configuration will run.

pub mod codegen;
pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gcm;
pub mod gvn;
pub mod licm;
pub mod loopopt;
pub mod regalloc;
pub mod vp;

use super::ir::IrFunc;
use super::{verify, CompileCtx};
use crate::config::{VerifyMode, VmKind};
use crate::exec::CrashInfo;

/// One pipeline stage: fallible in-place IR transform.
pub type PassFn = fn(&CompileCtx<'_>, &mut IrFunc) -> Result<(), CrashInfo>;

/// A named pipeline stage.
pub type Pass = (&'static str, PassFn);

fn run_copyprop(_: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    copyprop::run(func);
    Ok(())
}

fn run_dce(_: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    dce::run(func);
    Ok(())
}

/// HotSpot C1: quick tier.
const HOTSPOT_QUICK: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("dce", run_dce),
];

/// HotSpot C2: optimizing tier. Cleanup passes run twice: value numbering
/// introduces copies that expose further local CSE (classic
/// iterate-to-fixpoint, bounded to two rounds).
const HOTSPOT_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("copyprop", run_copyprop),
    ("gvn-local", gvn::run_local),
    ("gvn", gvn::run),
    ("licm", licm::run),
    ("gcm", gcm::run),
    ("loopopt", loopopt::run),
    ("regalloc", regalloc::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

const OPENJ9_QUICK: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("vp-local", vp::run_local),
    ("gvn-local", gvn::run_local),
    ("dce", run_dce),
];

const OPENJ9_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("vp-local", vp::run_local),
    ("vp-global", vp::run_global),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("copyprop", run_copyprop),
    ("gvn-local", gvn::run_local),
    ("gvn", gvn::run),
    ("licm", licm::run),
    ("loopopt", loopopt::run),
    ("regalloc", regalloc::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

/// ART's single "OptimizingCompiler" tier.
const ART_OPT: &[Pass] = &[
    ("copyprop", run_copyprop),
    ("constfold", constfold::run),
    ("gvn-local", gvn::run_local),
    ("licm", licm::run),
    ("codegen", codegen::run),
    ("dce", run_dce),
];

/// The pass table a VM kind runs at the given optimization level.
pub fn pipeline(kind: VmKind, optimizing: bool) -> &'static [Pass] {
    match (kind, optimizing) {
        (VmKind::HotSpotLike, false) => HOTSPOT_QUICK,
        (VmKind::HotSpotLike, true) => HOTSPOT_OPT,
        (VmKind::OpenJ9Like, false) => OPENJ9_QUICK,
        (VmKind::OpenJ9Like, true) => OPENJ9_OPT,
        (VmKind::ArtLike, _) => ART_OPT,
    }
}

/// Runs the pipeline for `ctx.kind` / `ctx.tier` over `func` in place.
///
/// In [`VerifyMode::Each`] the IR is statically verified after every
/// pass; defects (attributed to the pass's table name) accumulate in
/// `defects` without altering compilation — the verifier is an oracle,
/// not a gate.
pub fn run_pipeline(
    ctx: &CompileCtx<'_>,
    func: &mut IrFunc,
    defects: &mut Vec<verify::IrVerifyError>,
) -> Result<(), CrashInfo> {
    for (name, pass) in pipeline(ctx.kind, ctx.optimizing()) {
        pass(ctx, func)?;
        if ctx.verify == VerifyMode::Each {
            defects.extend(verify::check_func(func, ctx.program, name));
        }
    }
    Ok(())
}
