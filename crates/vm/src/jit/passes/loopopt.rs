//! Loop-level optimizations: unrolling/vectorization feasibility analysis
//! and allocation sinking.
//!
//! The transformations themselves are conservative (feasibility analysis
//! plus allocation-site instrumentation); the pass primarily hosts the
//! loop-related injected bugs:
//!
//! * [`BugId::HsLoopUnrollStep`] — unrolling a countable loop with step
//!   ≥ 2 and a large negative bound trips an assertion (the Artemis loop
//!   skeleton's `for (i = min(MIN, e); …; i += STEP)` shape).
//! * [`BugId::J9LoopVecMixedWidth`] — vectorizer asserts on loops mixing
//!   array-element widths at depth ≥ 2.
//! * [`BugId::HsPerfQuadraticLoop`] — "optimized" loop code burns fuel:
//!   the performance-bug class (paper Table 1 has exactly one).
//! * [`BugId::HsEscapeLoopStore`] — escape analysis asserts when a fresh
//!   allocation escapes through a field store inside a loop.
//! * `BugId::J9GcCorrupt*` — allocation sinking/re-materialization
//!   writes past objects; the *GC* crashes at the next collection (the
//!   paper's dominant OpenJ9 crash class).

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::LoopForest;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Feasibility analysis only on the correct path; any inserted
/// instrumentation is an injected bug the validator should flag.
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// Runs the loop analyses and injected-bug triggers.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    let forest = LoopForest::compute(func);
    let has_big_negative_const = func
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i.op, Op::ConstI(v) if v < -255));
    // Several triggers require *warm* profile state (hot back-edges), which
    // cold `count=0` compilation never has — the paper's central
    // observation about why the traditional approach misses deep bugs.
    let profile = &ctx.profiles[func.method.0 as usize];
    let warm_backedges = profile.backedges.iter().any(|&c| c >= 400);

    for lp in &forest.loops {
        let insts = |f: &IrFunc| -> Vec<(BlockId, usize)> {
            let mut out = Vec::new();
            for &b in &lp.blocks {
                for i in 0..f.blocks[b as usize].insts.len() {
                    out.push((b, i));
                }
            }
            out
        };
        let loop_insts = insts(func);

        // --- HotSpot: unrolling a stride-N countable loop with negative
        // bounds.
        if ctx.active(BugId::HsLoopUnrollStep) && has_big_negative_const && warm_backedges {
            let has_strided_step = loop_insts.iter().any(|&(b, i)| {
                let inst = &func.blocks[b as usize].insts[i];
                if let Op::BinI(BinKind::Add, _, c) = inst.op {
                    // The step operand must be a small constant 2..=16
                    // defined in the same loop.
                    loop_insts.iter().any(|&(b2, i2)| {
                        let d = &func.blocks[b2 as usize].insts[i2];
                        d.dst == Some(c) && matches!(d.op, Op::ConstI(k) if (7..=9).contains(&k))
                    })
                } else {
                    false
                }
            });
            if has_strided_step {
                return Err(ctx.crash(
                    BugId::HsLoopUnrollStep,
                    "ideal loop: unroll of strided countable loop with negative bound",
                ));
            }
        }

        // --- OpenJ9: vectorizer on mixed element widths.
        if ctx.active(BugId::J9LoopVecMixedWidth) && lp.depth >= 2 {
            let mut has_i32 = false;
            let mut has_other = false;
            for &(b, i) in &loop_insts {
                match &func.blocks[b as usize].insts[i].op {
                    Op::ArrLoad { kind, .. } | Op::ArrStore { kind, .. } => match kind {
                        cse_bytecode::ArrKind::I32 => has_i32 = true,
                        cse_bytecode::ArrKind::I64 | cse_bytecode::ArrKind::I8 => {
                            has_other = true;
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
            if has_i32 && has_other {
                return Err(ctx.crash(
                    BugId::J9LoopVecMixedWidth,
                    "loop vectorizer: mixed element widths in a nested loop",
                ));
            }
        }

        // --- HotSpot: escape analysis over allocations escaping in-loop.
        // The analysis only runs with profile data (profile-guided escape
        // heuristics), so `count=0` compiles skip it.
        if ctx.active(BugId::HsEscapeLoopStore) && ctx.speculate {
            let escapes = loop_insts.iter().any(|&(b, i)| {
                let inst = &func.blocks[b as usize].insts[i];
                if let (Some(dst), Op::NewObject(_)) = (inst.dst, &inst.op) {
                    loop_insts.iter().any(|&(b2, i2)| {
                        match &func.blocks[b2 as usize].insts[i2].op {
                            Op::PutField { val, .. } | Op::PutStatic { val, .. } => *val == dst,
                            Op::ArrStore { val, .. } => *val == dst,
                            _ => false,
                        }
                    })
                } else {
                    false
                }
            });
            if escapes {
                return Err(ctx.crash(
                    BugId::HsEscapeLoopStore,
                    "escape analysis: allocation escapes through an in-loop store",
                ));
            }
        }
    }

    // Mutating triggers (instrumentation) run after the crash checks.
    let forest = LoopForest::compute(func);
    let mut corruptions: Vec<(BlockId, usize, BugId)> = Vec::new();
    let mut burns: Vec<BlockId> = Vec::new();
    for lp in &forest.loops {
        // --- HotSpot performance bug: quadratic re-execution.
        if ctx.active(BugId::HsPerfQuadraticLoop) && lp.depth >= 2 {
            let has_switch = lp
                .blocks
                .iter()
                .any(|&b| matches!(func.blocks[b as usize].term, Term::Switch { .. }));
            if has_switch {
                burns.push(lp.header);
            }
        }
        for &b in &lp.blocks {
            for (i, inst) in func.blocks[b as usize].insts.iter().enumerate() {
                match (&inst.op, inst.dst) {
                    (Op::NewObject(_), Some(dst)) => {
                        if ctx.active(BugId::J9GcCorruptAllocSink) && !func.handlers.is_empty() {
                            corruptions.push((b, i, BugId::J9GcCorruptAllocSink));
                        } else if ctx.active(BugId::J9GcCorruptRematerialize)
                            && lp.depth >= 2
                            && escapes_to_field(func, &lp.blocks, dst)
                        {
                            corruptions.push((b, i, BugId::J9GcCorruptRematerialize));
                        }
                    }
                    (Op::NewArray { .. }, Some(_))
                        if ctx.active(BugId::J9GcCorruptUnrollAlloc) && lp.depth >= 2 =>
                    {
                        corruptions.push((b, i, BugId::J9GcCorruptUnrollAlloc));
                    }
                    _ => {}
                }
            }
        }
    }
    corruptions.sort_by_key(|&(b, i, _)| (b, std::cmp::Reverse(i)));
    corruptions.dedup_by_key(|&mut (b, i, _)| (b, i));
    for (b, i, bug) in corruptions {
        let at = &func.blocks[b as usize].insts[i];
        let (frame, bc_pc) = (at.frame, at.bc_pc);
        func.blocks[b as usize]
            .insts
            .insert(i + 1, Inst { dst: None, op: Op::CorruptHeap { bug }, frame, bc_pc });
    }
    burns.sort_unstable();
    burns.dedup();
    for b in burns {
        func.blocks[b as usize]
            .insts
            .insert(0, Inst { dst: None, op: Op::BurnFuel { factor: 20000 }, frame: 0, bc_pc: 0 });
    }
    Ok(())
}

fn escapes_to_field(func: &IrFunc, loop_blocks: &[BlockId], reg: Reg) -> bool {
    loop_blocks.iter().any(|&b| {
        func.blocks[b as usize].insts.iter().any(|inst| match &inst.op {
            Op::PutField { val, .. } | Op::PutStatic { val, .. } => *val == reg,
            _ => false,
        })
    })
}
