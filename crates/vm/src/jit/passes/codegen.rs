//! Code-generation lowering checks.
//!
//! The evaluator runs IR directly, so "code generation" is the final
//! lowering validation a backend would perform. It hosts the
//! backend-flavored injected bugs: multi-array lowering in loops, long
//! multiplication fed by OSR state, string concatenation in nested loops,
//! switch-arm budgets, JIT↔interpreter call budgets, and the
//! wild-pointer narrowing that crashes *at execution time*
//! ([`BugId::HsCodeExecNarrowSegv`]).

use std::collections::HashMap;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::LoopForest;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Final lowering validation: the IR may only be renamed, never
/// restructured (the narrowing rewrite under
/// [`BugId::HsCodeExecNarrowSegv`] is exactly what this catches).
pub const TV_CONTRACT: TvContract = TvContract::LayoutOnly;

/// Runs the lowering checks and (for the code-execution bug) rewrites.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    let forest = LoopForest::compute(func);
    let in_loop = |b: BlockId| forest.depth(b) >= 1;

    let mut call_count = 0usize;
    for (b, block) in func.blocks.iter().enumerate() {
        let b = b as BlockId;
        for inst in &block.insts {
            match &inst.op {
                Op::NewMultiArray { .. }
                    if in_loop(b) && ctx.active(BugId::HsCodegenMultiArray) =>
                {
                    return Err(ctx.crash(
                        BugId::HsCodegenMultiArray,
                        "codegen: multianewarray lowering inside a loop",
                    ));
                }
                Op::BinL(BinKind::Mul, ..)
                    if forest.depth(b) >= 2
                        && func.osr_entry.is_some()
                        && ctx.active(BugId::J9CodegenLongMul) =>
                {
                    return Err(ctx.crash(
                        BugId::J9CodegenLongMul,
                        "codegen: long multiply fed by OSR entry state",
                    ));
                }
                Op::Concat(..)
                    if forest.depth(b) >= 2 && ctx.active(BugId::J9CodegenConcatLoop) =>
                {
                    return Err(ctx.crash(
                        BugId::J9CodegenConcatLoop,
                        "codegen: string concatenation in a nested loop",
                    ));
                }
                Op::Call { .. } => call_count += 1,
                _ => {}
            }
        }
        if let Term::Switch { cases, .. } = &block.term {
            let profile = &ctx.profiles[func.method.0 as usize];
            let warm = profile.invocations >= 200 || profile.backedges.iter().any(|&c| c >= 200);
            if cases.len() >= 5 && warm && ctx.active(BugId::ArtOptCompSwitchAssert) {
                return Err(ctx.crash(
                    BugId::ArtOptCompSwitchAssert,
                    format!("OptimizingCompiler: hot switch with {} arms", cases.len()),
                ));
            }
        }
    }
    if call_count > 24 && ctx.speculate && ctx.active(BugId::J9JitIntCallAssert) {
        return Err(ctx.crash(
            BugId::J9JitIntCallAssert,
            format!("JIT-INT interaction: {call_count} residual call sites"),
        ));
    }

    // Code-execution bug: a byte narrowing fed directly by a field load
    // lowers to a wild memory access — the crash happens when the compiled
    // code runs, not at compile time.
    if ctx.active(BugId::HsCodeExecNarrowSegv) && ctx.optimizing() {
        // Single-def map to identify the feeding instruction.
        let mut defs: HashMap<Reg, Op> = HashMap::new();
        let mut multi: HashMap<Reg, bool> = HashMap::new();
        for block in &func.blocks {
            for inst in &block.insts {
                if let Some(dst) = inst.dst {
                    let seen = defs.insert(dst, inst.op.clone()).is_some();
                    if seen {
                        multi.insert(dst, true);
                    }
                }
            }
        }
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                if let Op::I2B(src) = inst.op {
                    let fed_by_field_load = !multi.get(&src).copied().unwrap_or(false)
                        && matches!(defs.get(&src), Some(Op::GetField { .. }));
                    if fed_by_field_load {
                        inst.op = Op::CrashOnExec { bug: BugId::HsCodeExecNarrowSegv };
                    }
                }
            }
        }
    }
    Ok(())
}
