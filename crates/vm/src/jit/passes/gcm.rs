//! Global code motion.
//!
//! The legitimate transformation is conservative *sinking*: a pure,
//! single-assignment instruction whose only use lives in a different block
//! dominated by its definition moves next to that use — provided the
//! destination block is **not in a deeper loop** than its home block.
//!
//! The injected [`BugId::HsGcmStoreSink`] is the paper's Figure 2 bug
//! (JDK-8288975): the pass estimates block frequencies as
//! `freq(b) = 10^min(loop_depth(b), 2)`, so blocks at depth ≥ 2 *tie* with
//! deeper blocks. When a field read-modify-write chain lives in a tied
//! block whose loop has a nested child loop, the buggy pass sinks the
//! whole chain — a *memory-writing* instruction — into the deeper loop,
//! executing it once per inner iteration. The real fix ("prevent this pass
//! from moving memory-writing instructions into loops deeper than their
//! home loops") maps exactly onto the guard the bug bypasses.

use std::collections::HashMap;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::cfg::{Dominators, LoopForest};
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Sinks only pure single-assignment computation; effects stay put.
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// One sink decision: (from block+index, to block+index, the instruction).
type Move = ((BlockId, usize), (BlockId, usize), Inst);

/// The buggy frequency model: depth capped at 2.
fn freq(depth: usize) -> u64 {
    10u64.pow(depth.min(2) as u32)
}

/// Runs sinking, then the injected store-sink when active.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    sink_pure_single_use(func);
    // The buggy frequency model only ties when profile-scaled estimates
    // exist (profile-guided compiles); `count=0` compilation uses static
    // estimates that never tie.
    if ctx.active(BugId::HsGcmStoreSink) && ctx.optimizing() && ctx.speculate {
        buggy_store_sink(func);
    }
    Ok(())
}

/// Legitimate conservative sinking.
fn sink_pure_single_use(func: &mut IrFunc) {
    let doms = Dominators::compute(func);
    let forest = LoopForest::compute(func);
    // Count defs and uses; remember the unique use site.
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    let mut use_count: HashMap<Reg, u32> = HashMap::new();
    let mut use_site: HashMap<Reg, (BlockId, usize)> = HashMap::new();
    for (b, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(dst) = inst.dst {
                *def_count.entry(dst).or_default() += 1;
            }
            for src in inst.op.sources() {
                *use_count.entry(src).or_default() += 1;
                use_site.insert(src, (b as BlockId, i));
            }
        }
        for src in block.term.sources() {
            *use_count.entry(src).or_default() += 1;
            // Terminator uses pin the value to its own block; encode as a
            // use "past the end".
            use_site.insert(src, (b as BlockId, usize::MAX));
        }
    }
    let is_anchor = |r: Reg| func.anchor_limit_per_frame.iter().any(|&(lo, hi)| r >= lo && r < hi);
    // Collect sink decisions first (block, index) -> target (block, index).
    let mut moves: Vec<Move> = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        let b = b as BlockId;
        for (i, inst) in block.insts.iter().enumerate() {
            let Some(dst) = inst.dst else { continue };
            if !inst.op.is_pure()
                || is_anchor(dst)
                || def_count.get(&dst).copied().unwrap_or(0) != 1
                || use_count.get(&dst).copied().unwrap_or(0) != 1
            {
                continue;
            }
            // All operands must be *stable* (value fixed after its unique
            // def) so the value at the sink point equals the value at the
            // original point: non-anchors with one def, or anchors that are
            // never reassigned (their def is the frame entry).
            let stable = |s: Reg| {
                let defs = def_count.get(&s).copied().unwrap_or(0);
                if is_anchor(s) {
                    defs == 0
                } else {
                    defs == 1
                }
            };
            if !inst.op.sources().iter().all(|&s| stable(s)) {
                continue;
            }
            let Some(&(ub, ui)) = use_site.get(&dst) else { continue };
            if ub == b || ui == usize::MAX {
                continue;
            }
            // The guard the injected bug bypasses: never into deeper loops.
            if forest.depth(ub) > forest.depth(b) {
                continue;
            }
            if !doms.dominates(b, ub) {
                continue;
            }
            moves.push(((b, i), (ub, ui), inst.clone()));
        }
    }
    apply_moves(func, moves);
}

/// The injected Figure-2 store sink.
fn buggy_store_sink(func: &mut IrFunc) {
    let forest = LoopForest::compute(func);
    // Global def counts: operands defined outside the home block are
    // acceptable when stable (single definition or never reassigned),
    // because the sink target sits strictly deeper in the same nest.
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some(dst) = inst.dst {
                *def_count.entry(dst).or_default() += 1;
            }
        }
    }
    let mut chain_moves: Vec<(BlockId, Vec<usize>, BlockId)> = Vec::new();
    for b in 0..func.blocks.len() {
        let b = b as BlockId;
        let home_depth = forest.depth(b);
        if home_depth < 2 {
            continue;
        }
        let Some(home_loop) = forest.innermost.get(b as usize).copied() else { continue };
        if home_loop == usize::MAX {
            continue;
        }
        // A directly nested child loop to sink into.
        let Some(&child) = forest.children(home_loop).first() else { continue };
        let inner_header = forest.loops[child].header;
        let inner_depth = forest.loops[child].depth;
        // The buggy tie: freq(home) == freq(inner) although inner is deeper.
        if !(inner_depth > home_depth && freq(home_depth) == freq(inner_depth)) {
            continue;
        }
        // Find a field RMW chain: GetField -> pure chain -> PutField of the
        // same (object register, field), with the object held in an anchor.
        let Some(indices) = find_rmw_chain(func, b, &func.anchor_limit_per_frame, &def_count)
        else {
            continue;
        };
        chain_moves.push((b, indices, inner_header));
        break; // One sink per compilation keeps the damage analyzable.
    }
    for (b, indices, target) in chain_moves {
        let mut moved: Vec<Inst> = Vec::new();
        let block = &mut func.blocks[b as usize];
        for &i in indices.iter().rev() {
            moved.push(block.insts.remove(i));
        }
        moved.reverse();
        let target_block = &mut func.blocks[target as usize];
        for (offset, inst) in moved.into_iter().enumerate() {
            target_block.insts.insert(offset, inst);
        }
    }
}

/// Looks for `GetField(obj, f) ; …pure ops… ; PutField(obj, f, result)`
/// inside block `b`. Operands defined in `b` join the movable chain;
/// operands defined elsewhere are accepted when *stable* (anchors, or
/// registers with a single global definition — e.g. loop-invariant
/// constants LICM already hoisted). Returns the chain's instruction
/// indices, in order.
fn find_rmw_chain(
    func: &IrFunc,
    b: BlockId,
    anchors: &[(Reg, Reg)],
    def_count: &HashMap<Reg, u32>,
) -> Option<Vec<usize>> {
    let block = &func.blocks[b as usize];
    let is_anchor = |r: Reg| anchors.iter().any(|&(lo, hi)| r >= lo && r < hi);
    let stable_external = |r: Reg| {
        let defs = def_count.get(&r).copied().unwrap_or(0);
        if is_anchor(r) {
            defs == 0
        } else {
            defs <= 1
        }
    };
    'stores: for (store_idx, inst) in block.insts.iter().enumerate() {
        let Op::PutField { obj, field, val } = inst.op else { continue };
        if !is_anchor(obj) {
            continue;
        }
        // Walk the def chain of `val` backwards within the block.
        let mut needed: Vec<Reg> = vec![val];
        let mut chain: Vec<usize> = vec![store_idx];
        let mut found_load = false;
        for i in (0..store_idx).rev() {
            let inst = &block.insts[i];
            let Some(dst) = inst.dst else { continue };
            if !needed.contains(&dst) {
                continue;
            }
            needed.retain(|&r| r != dst);
            match &inst.op {
                Op::GetField { obj: lobj, field: lfield } if *lobj == obj && *lfield == field => {
                    chain.push(i);
                    found_load = true;
                }
                Op::ConstI(_) | Op::ConstL(_) => chain.push(i),
                op if op.is_pure() => {
                    chain.push(i);
                    for s in op.sources() {
                        if !is_anchor(s) && !needed.contains(&s) {
                            needed.push(s);
                        }
                    }
                }
                _ => continue 'stores,
            }
        }
        // Anything still needed must be stable outside the block.
        needed.retain(|&r| !stable_external(r));
        if found_load && needed.is_empty() {
            chain.sort_unstable();
            return Some(chain);
        }
    }
    None
}

fn apply_moves(func: &mut IrFunc, mut moves: Vec<Move>) {
    // Apply one move at a time, re-locating by identity to survive index
    // shifts from earlier moves.
    while let Some(((fb, _), (ub, ui), inst)) = moves.pop() {
        let from = &mut func.blocks[fb as usize];
        let Some(pos) = from.insts.iter().position(|i| *i == inst) else { continue };
        let inst = from.insts.remove(pos);
        let to = &mut func.blocks[ub as usize];
        let at = ui.min(to.insts.len());
        to.insts.insert(at, inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Tier, VmKind};
    use crate::faults::FaultInjector;
    use crate::profile::MethodProfile;
    use cse_bytecode::{BProgram, MethodId};

    fn tiny_program() -> BProgram {
        let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
        cse_bytecode::compile(&p).unwrap()
    }

    fn ctx<'a>(
        program: &'a BProgram,
        profiles: &'a [MethodProfile],
        faults: &'a FaultInjector,
    ) -> CompileCtx<'a> {
        CompileCtx {
            program,
            profiles,
            faults,
            kind: VmKind::HotSpotLike,
            tier: Tier::T2,
            speculate: true,
            inline_limit: 48,
            has_osr_code: false,
            verify: crate::config::VerifyMode::Off,
            tv: crate::config::TvMode::Off,
            fired: std::cell::Cell::new(0),
        }
    }

    fn inst(dst: Option<Reg>, op: Op) -> Inst {
        Inst { dst, op, frame: 0, bc_pc: 0 }
    }

    /// Two nested loops, RMW chain in the depth-2 block `4`, inner loop
    /// header at depth 3 in block `2`:
    ///
    /// 0 -> 1(outer hdr) -> 5(mid hdr) -> 2(inner hdr) -> {2 via 3, 4}
    /// 4(mid latch, RMW) -> 5 ; 5 -> 1 exit path via branch; 1 -> 6 exit.
    fn nested_func() -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![
                // 0: entry
                Block { insts: vec![], term: Term::Jump(1) },
                // 1: outer header (depth 1)
                Block { insts: vec![], term: Term::Branch { cond: 0, if_true: 5, if_false: 6 } },
                // 2: inner header (depth 3)
                Block { insts: vec![], term: Term::Branch { cond: 0, if_true: 3, if_false: 4 } },
                // 3: inner latch
                Block { insts: vec![], term: Term::Jump(2) },
                // 4: mid latch with the RMW chain (depth 2)
                Block {
                    insts: vec![
                        inst(Some(10), Op::GetField { obj: 1, field: 0 }),
                        inst(Some(11), Op::ConstI(2)),
                        inst(Some(12), Op::BinI(BinKind::Add, 10, 11)),
                        inst(Some(13), Op::I2B(12)),
                        inst(None, Op::PutField { obj: 1, field: 0, val: 13 }),
                    ],
                    term: Term::Jump(5),
                },
                // 5: mid header (depth 2)
                Block { insts: vec![], term: Term::Branch { cond: 0, if_true: 2, if_false: 1 } },
                // 6: exit
                Block { insts: vec![], term: Term::Return(None) },
            ],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 3,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 3)],
        }
    }

    #[test]
    fn store_chain_stays_without_bug() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        let mut f = nested_func();
        run(&c, &mut f).unwrap();
        assert_eq!(f.blocks[4].insts.len(), 5, "RMW chain must not move");
    }

    #[test]
    fn injected_gcm_bug_sinks_store_into_inner_loop() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::with([BugId::HsGcmStoreSink]);
        let c = ctx(&program, &profiles, &faults);
        let mut f = nested_func();
        // Sanity: depths tie under the buggy frequency model.
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.depth(4), 2);
        assert_eq!(forest.depth(2), 3);
        assert_eq!(freq(2), freq(3));
        run(&c, &mut f).unwrap();
        assert!(f.blocks[4].insts.is_empty(), "chain moved: {:?}", f.blocks[4].insts);
        assert!(f.blocks[2].insts.iter().any(|i| matches!(i.op, Op::PutField { .. })));
    }

    #[test]
    fn legit_sink_moves_single_use_into_dominated_block() {
        let program = tiny_program();
        let profiles = vec![MethodProfile::default(); program.methods.len()];
        let faults = FaultInjector::none();
        let c = ctx(&program, &profiles, &faults);
        // 0: defines r10 = 1 + 2 (single use in block 1); 0 -> 1 -> ret.
        let mut f = IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![
                Block {
                    insts: vec![inst(Some(10), Op::BinI(BinKind::Add, 1, 2))],
                    term: Term::Jump(1),
                },
                Block {
                    insts: vec![inst(Some(11), Op::BinI(BinKind::Mul, 10, 2))],
                    term: Term::Return(Some(11)),
                },
            ],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 3,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 3)],
        };
        run(&c, &mut f).unwrap();
        assert!(f.blocks[0].insts.is_empty());
        assert_eq!(f.blocks[1].insts.len(), 2);
        assert!(matches!(f.blocks[1].insts[0].op, Op::BinI(BinKind::Add, ..)));
    }
}
