//! Block-local copy propagation.
//!
//! The IR builder lowers every bytecode `Load`/`Store`/`Dup` into a
//! register copy, so the raw IR is copy-saturated. This pass rewrites
//! instruction sources to read through copies, after which value numbering
//! and DCE shrink the code substantially. No instruction is removed here —
//! in particular, writes to anchor registers always remain.

use std::collections::HashMap;

use crate::jit::ir::{IrFunc, Op, Reg};
use crate::jit::tv::TvContract;

/// Rewrites sources through copies only; never adds, drops, or
/// reorders instructions.
pub const TV_CONTRACT: TvContract = TvContract::EffectPreserving;

/// Runs copy propagation on every block.
pub fn run(func: &mut IrFunc) {
    for block in &mut func.blocks {
        // `equals[d] = s` means register d currently holds the value of s.
        let mut equals: HashMap<Reg, Reg> = HashMap::new();
        let resolve =
            |map: &HashMap<Reg, Reg>, r: Reg| -> Reg { map.get(&r).copied().unwrap_or(r) };
        for inst in &mut block.insts {
            let snapshot = equals.clone();
            inst.op.map_sources(|r| resolve(&snapshot, r));
            if let Some(dst) = inst.dst {
                // The old value of dst is gone: drop facts about dst and
                // facts that read dst.
                equals.remove(&dst);
                equals.retain(|_, src| *src != dst);
                if let Op::Copy(src) = inst.op {
                    if src != dst {
                        equals.insert(dst, src);
                    }
                }
            }
        }
        let snapshot = equals;
        block.term.map_sources(|r| snapshot.get(&r).copied().unwrap_or(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Tier;
    use crate::jit::ir::*;
    use cse_bytecode::MethodId;

    fn func_with(insts: Vec<Inst>, term: Term) -> IrFunc {
        IrFunc {
            method: MethodId(0),
            tier: Tier::T1,
            blocks: vec![Block { insts, term }],
            num_regs: 16,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 4,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 4)],
        }
    }

    fn inst(dst: Option<Reg>, op: Op) -> Inst {
        Inst { dst, op, frame: 0, bc_pc: 0 }
    }

    #[test]
    fn propagates_through_copies() {
        // r4 = copy r0; r5 = copy r4; r6 = r5 + r4  =>  r6 = r0 + r0.
        let mut f = func_with(
            vec![
                inst(Some(4), Op::Copy(0)),
                inst(Some(5), Op::Copy(4)),
                inst(Some(6), Op::BinI(BinKind::Add, 5, 4)),
            ],
            Term::Return(Some(6)),
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[2].op, Op::BinI(BinKind::Add, 0, 0));
    }

    #[test]
    fn invalidates_on_redefinition() {
        // r4 = copy r0; r0 = const 9; r5 = copy r4 — r4 still holds the
        // OLD r0, so r5 must NOT become a copy of r0.
        let mut f = func_with(
            vec![
                inst(Some(4), Op::Copy(0)),
                inst(Some(0), Op::ConstI(9)),
                inst(Some(5), Op::Copy(4)),
            ],
            Term::Return(Some(5)),
        );
        run(&mut f);
        assert_eq!(f.blocks[0].insts[2].op, Op::Copy(4));
    }

    #[test]
    fn rewrites_terminator_sources() {
        let mut f = func_with(
            vec![inst(Some(4), Op::Copy(1))],
            Term::Branch { cond: 4, if_true: 0, if_false: 0 },
        );
        run(&mut f);
        assert_eq!(f.blocks[0].term, Term::Branch { cond: 1, if_true: 0, if_false: 0 });
    }
}
