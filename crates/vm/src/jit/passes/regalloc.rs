//! Register allocation (pressure analysis).
//!
//! The evaluator executes virtual registers directly, so "allocation" here
//! is the liveness/pressure analysis a linear-scan allocator would run —
//! plus the pressure-triggered injected assertions
//! ([`BugId::HsRegAllocPressure`], [`BugId::J9RegAllocLongPressure`]).

use std::collections::HashSet;

use crate::exec::CrashInfo;
use crate::faults::BugId;
use crate::jit::ir::*;
use crate::jit::tv::TvContract;
use crate::jit::CompileCtx;

/// Location assignment: the IR may only be renamed, never
/// restructured.
pub const TV_CONTRACT: TvContract = TvContract::LayoutOnly;

/// Computes maximum register pressure and fires pressure assertions.
pub fn run(ctx: &CompileCtx<'_>, func: &mut IrFunc) -> Result<(), CrashInfo> {
    let pressure = max_pressure(func);
    if ctx.active(BugId::HsRegAllocPressure) && pressure > 40 {
        return Err(ctx.crash(
            BugId::HsRegAllocPressure,
            format!("register allocator: live range budget exceeded ({pressure})"),
        ));
    }
    if ctx.active(BugId::J9RegAllocLongPressure) && pressure > 34 {
        let has_long =
            func.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i.op, Op::BinL(..)));
        if has_long {
            return Err(ctx.crash(
                BugId::J9RegAllocLongPressure,
                format!("register allocator: GPR pair pressure {pressure}"),
            ));
        }
    }
    Ok(())
}

/// Backward liveness analysis; returns the maximum live-set size observed
/// at any program point.
pub fn max_pressure(func: &IrFunc) -> usize {
    let n = func.blocks.len();
    let preds = func.predecessors();
    let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out: HashSet<Reg> = HashSet::new();
            for succ in func.blocks[b].term.successors() {
                out.extend(live_in[succ as usize].iter().copied());
            }
            let mut live = out.clone();
            for src in func.blocks[b].term.sources() {
                live.insert(src);
            }
            for inst in func.blocks[b].insts.iter().rev() {
                if let Some(dst) = inst.dst {
                    live.remove(&dst);
                }
                for src in inst.op.sources() {
                    live.insert(src);
                }
            }
            if live != live_in[b] || out != live_out[b] {
                live_in[b] = live;
                live_out[b] = out;
                changed = true;
                // Propagate to predecessors next sweep.
                let _ = &preds;
            }
        }
    }
    // Pressure: walk each block once more, tracking the running live set.
    let mut max = 0usize;
    for (b, out) in live_out.iter().enumerate() {
        let mut live = out.clone();
        max = max.max(live.len());
        for inst in func.blocks[b].insts.iter().rev() {
            if let Some(dst) = inst.dst {
                live.remove(&dst);
            }
            for src in inst.op.sources() {
                live.insert(src);
            }
            max = max.max(live.len());
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Tier;
    use cse_bytecode::MethodId;

    #[test]
    fn pressure_counts_simultaneously_live_values() {
        // r4..r9 defined then all summed: pressure peaks at 6.
        let mut insts: Vec<Inst> = (4..10)
            .map(|r| Inst { dst: Some(r), op: Op::ConstI(r as i32), frame: 0, bc_pc: 0 })
            .collect();
        let mut acc = 4u32;
        for r in 5..10u32 {
            insts.push(Inst {
                dst: Some(10 + r),
                op: Op::BinI(BinKind::Add, acc, r),
                frame: 0,
                bc_pc: 0,
            });
            acc = 10 + r;
        }
        let func = IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![Block { insts, term: Term::Return(Some(acc)) }],
            num_regs: 32,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 1,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 1)],
        };
        assert_eq!(max_pressure(&func), 6);
    }
}
