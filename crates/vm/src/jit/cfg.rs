//! Control-flow analyses over the IR: reverse postorder, dominators
//! (Cooper–Harvey–Kennedy), and the natural-loop forest.

use super::ir::{BlockId, IrFunc};

/// Reverse postorder of reachable blocks from the entry.
pub fn reverse_postorder(func: &IrFunc) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post: Vec<BlockId> = Vec::with_capacity(n);
    // Iterative DFS with an explicit phase marker.
    let mut stack: Vec<(BlockId, bool)> = vec![(0, false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if visited[b as usize] {
            continue;
        }
        visited[b as usize] = true;
        stack.push((b, true));
        for succ in func.blocks[b as usize].term.successors() {
            if !visited[succ as usize] {
                stack.push((succ, false));
            }
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree.
#[derive(Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b`; `idom[0] == 0`. Blocks
    /// unreachable from the entry have `u32::MAX`.
    pub idom: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators using the iterative CHK algorithm, with handler
    /// edges included (via [`IrFunc::predecessors`]) so exceptional control
    /// flow is modeled conservatively.
    pub fn compute(func: &IrFunc) -> Dominators {
        let n = func.blocks.len();
        let rpo = reverse_postorder(func);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b as usize] = i;
        }
        let preds = func.predecessors();
        let mut idom: Vec<BlockId> = vec![u32::MAX; n];
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b as usize] {
                    if idom[p as usize] == u32::MAX {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b as usize] != ni {
                        idom[b as usize] = ni;
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b as usize] == u32::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == 0 {
                return false;
            }
            cur = self.idom[cur as usize];
        }
    }
}

fn intersect(idom: &[BlockId], rpo_index: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while rpo_index[a as usize] > rpo_index[b as usize] {
            a = idom[a as usize];
        }
        while rpo_index[b as usize] > rpo_index[a as usize] {
            b = idom[b as usize];
        }
    }
    a
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    pub header: BlockId,
    /// Blocks in the loop (including the header).
    pub blocks: Vec<BlockId>,
    /// Parent loop index in the forest, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

/// The natural-loop forest of a function.
#[derive(Debug, Default)]
pub struct LoopForest {
    pub loops: Vec<Loop>,
    /// Innermost loop index per block (`usize::MAX` = not in a loop).
    pub innermost: Vec<usize>,
}

impl LoopForest {
    /// Detects natural loops from back-edges `u -> v` where `v` dominates
    /// `u`, merging loops that share a header.
    pub fn compute(func: &IrFunc) -> LoopForest {
        let doms = Dominators::compute(func);
        let preds = func.predecessors();
        let n = func.blocks.len();
        // Collect loop bodies per header.
        let mut header_blocks: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for (u, block) in func.blocks.iter().enumerate() {
            for v in block.term.successors() {
                if doms.dominates(v, u as BlockId) {
                    // Natural loop of back-edge u -> v.
                    let mut body = vec![v];
                    let mut stack = vec![u as BlockId];
                    while let Some(x) = stack.pop() {
                        if body.contains(&x) {
                            continue;
                        }
                        body.push(x);
                        for &p in &preds[x as usize] {
                            stack.push(p);
                        }
                    }
                    match header_blocks.iter_mut().find(|(h, _)| *h == v) {
                        Some((_, existing)) => {
                            for b in body {
                                if !existing.contains(&b) {
                                    existing.push(b);
                                }
                            }
                        }
                        None => header_blocks.push((v, body)),
                    }
                }
            }
        }
        // Order loops by body size descending so parents precede children.
        header_blocks.sort_by_key(|(_, body)| std::cmp::Reverse(body.len()));
        let mut forest = LoopForest { loops: Vec::new(), innermost: vec![usize::MAX; n] };
        for (header, blocks) in header_blocks {
            // Parent = the smallest existing loop that contains our header
            // (loops are processed largest-first).
            let parent = forest
                .loops
                .iter()
                .enumerate()
                .filter(|(_, l)| l.blocks.contains(&header))
                .min_by_key(|(_, l)| l.blocks.len())
                .map(|(i, _)| i);
            let depth = parent.map(|p| forest.loops[p].depth + 1).unwrap_or(1);
            forest.loops.push(Loop { header, blocks, parent, depth });
        }
        // Innermost loop per block = deepest loop containing it.
        for (i, l) in forest.loops.iter().enumerate() {
            for &b in &l.blocks {
                let cur = forest.innermost[b as usize];
                if cur == usize::MAX || forest.loops[cur].depth < l.depth {
                    forest.innermost[b as usize] = i;
                }
            }
        }
        forest
    }

    /// Loop depth of a block (0 = not in any loop).
    pub fn depth(&self, block: BlockId) -> usize {
        match self.innermost.get(block as usize) {
            Some(&idx) if idx != usize::MAX => self.loops[idx].depth,
            _ => 0,
        }
    }

    /// Deepest loop nesting in the function.
    pub fn max_depth(&self) -> usize {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Indices of the direct child loops of loop `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.loops.iter().enumerate().filter(|(_, l)| l.parent == Some(i)).map(|(j, _)| j).collect()
    }

    /// Whether `block` belongs to loop `i`.
    pub fn contains(&self, i: usize, block: BlockId) -> bool {
        self.loops[i].blocks.contains(&block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Tier;
    use crate::events::DeoptReason;
    use crate::jit::ir::*;
    use cse_bytecode::MethodId;

    /// Builds a diamond-with-loop CFG:
    /// 0 -> 1; 1 -> 2 (loop header); 2 -> 3, 4; 3 -> 2 (back edge);
    /// 4 -> 5 (exit).
    fn looped_func() -> IrFunc {
        let block = |term: Term| Block { insts: vec![], term };
        IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![
                block(Term::Jump(1)),
                block(Term::Jump(2)),
                block(Term::Branch { cond: 0, if_true: 3, if_false: 4 }),
                block(Term::Jump(2)),
                block(Term::Jump(5)),
                block(Term::Return(None)),
            ],
            num_regs: 1,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 1,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 1)],
        }
    }

    #[test]
    fn rpo_starts_at_entry() {
        let func = looped_func();
        let rpo = reverse_postorder(&func);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 6);
    }

    #[test]
    fn dominators_of_looped_cfg() {
        let func = looped_func();
        let doms = Dominators::compute(&func);
        assert!(doms.dominates(0, 5));
        assert!(doms.dominates(2, 3));
        assert!(doms.dominates(2, 4));
        assert!(!doms.dominates(3, 4));
        assert_eq!(doms.idom[3], 2);
        assert_eq!(doms.idom[5], 4);
    }

    #[test]
    fn loop_forest_finds_the_loop() {
        let func = looped_func();
        let forest = LoopForest::compute(&func);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].header, 2);
        assert_eq!(forest.depth(2), 1);
        assert_eq!(forest.depth(3), 1);
        assert_eq!(forest.depth(0), 0);
        assert_eq!(forest.depth(5), 0);
        assert_eq!(forest.max_depth(), 1);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let block = |term: Term| Block { insts: vec![], term };
        // 0 -> 1 (outer header); 1 -> 2 (inner header); 2 -> 2? no:
        // 2 -> 3; 3 -> 2 (inner back); 3 -> handled via branch; use:
        // 1 -> 2; 2 -> branch(3, 4); 3 -> 2 (inner back); 4 -> branch(1, 5).
        let func = IrFunc {
            method: MethodId(0),
            tier: Tier::T2,
            blocks: vec![
                block(Term::Jump(1)),
                block(Term::Jump(2)),
                block(Term::Branch { cond: 0, if_true: 3, if_false: 4 }),
                block(Term::Jump(2)),
                block(Term::Branch { cond: 0, if_true: 1, if_false: 5 }),
                block(Term::Return(None)),
            ],
            num_regs: 1,
            frames: vec![InlineFrame {
                method: MethodId(0),
                local_base: 0,
                num_locals: 1,
                parent: None,
            }],
            handlers: vec![],
            osr_entry: None,
            anchor_limit_per_frame: vec![(0, 1)],
        };
        let forest = LoopForest::compute(&func);
        assert_eq!(forest.loops.len(), 2);
        assert_eq!(forest.max_depth(), 2);
        let inner = forest.loops.iter().find(|l| l.header == 2).unwrap();
        assert_eq!(inner.depth, 2);
        let outer = forest.loops.iter().find(|l| l.header == 1).unwrap();
        assert_eq!(outer.depth, 1);
        // Trap terminators should not break any of this.
        let _ = DeoptReason::BranchSpeculation;
    }
}
