//! Bytecode → IR translation, with inlining and profile speculation.
//!
//! The translation uses fixed register assignment: frame locals map to a
//! contiguous anchor range and operand-stack slot `d` maps to
//! `stack_base + d`, so control-flow merges need no phis (see
//! [`super::ir`]). Inlined callees get their own local/stack register
//! ranges; their `Return`s become copies plus jumps to a continuation
//! block. Tier-2 compilations of profiled code replace never-taken branch
//! and switch successors with uncommon-trap blocks.

use std::collections::{BTreeSet, HashMap};

use cse_bytecode::{BMethod, BProgram, Insn, MethodId};

use super::ir::*;
use super::{CompileCtx, CompileFail};
use crate::events::DeoptReason;
use crate::exec::CrashInfo;
use crate::faults::BugId;

/// Minimum number of profile observations before speculating on a branch.
const MIN_PROFILE: u64 = 8;

/// Placeholder for unpatched jump targets.
const DEAD: u32 = u32::MAX;

/// Whether OSR entry is possible at `header` (the abstract operand stack
/// must be empty there, so interpreter locals fully describe the state).
pub(crate) fn can_osr(program: &BProgram, method: MethodId, header: u32) -> bool {
    let m = program.method(method);
    stack_depths(program, m).get(header as usize).map(|&d| d == 0).unwrap_or(false)
}

/// Builds the IR for `method`, optionally as an OSR variant.
pub(super) fn build(
    ctx: &CompileCtx<'_>,
    method: MethodId,
    osr: Option<u32>,
) -> Result<IrFunc, CompileFail> {
    if let Some(header) = osr {
        if !can_osr(ctx.program, method, header) {
            return Err(CompileFail::OsrUnsupported);
        }
    }
    let mut builder = Builder {
        ctx,
        blocks: Vec::new(),
        frames: Vec::new(),
        handlers: Vec::new(),
        anchors: Vec::new(),
        next_reg: 0,
        inline_chain: vec![method],
        trap_blocks: HashMap::new(),
    };
    // Block 0 is a prologue that jumps to the (normal or OSR) entry.
    builder.blocks.push(Block { insts: vec![], term: Term::Jump(DEAD) });
    let m = ctx.program.method(method);
    let local_base = builder.alloc_regs(u32::from(m.num_locals));
    let depths = stack_depths(ctx.program, m);
    let max_stack = depths.iter().copied().max().unwrap_or(0).max(0) as u32 + 2;
    let stack_base = builder.alloc_regs(max_stack);
    let speculate = ctx.speculate && ctx.optimizing();
    let entry_map = builder
        .translate_frame(method, local_base, stack_base, None, None, speculate)
        .map_err(CompileFail::Crash)?;
    let entry_pc = osr.unwrap_or(0);
    let entry_block = entry_map[&entry_pc];
    builder.blocks[0].term = Term::Jump(entry_block);
    Ok(IrFunc {
        method,
        tier: ctx.tier,
        blocks: builder.blocks,
        num_regs: builder.next_reg,
        frames: builder.frames,
        handlers: builder.handlers,
        osr_entry: osr,
        anchor_limit_per_frame: builder.anchors,
    })
}

struct Builder<'a, 'p> {
    ctx: &'a CompileCtx<'p>,
    blocks: Vec<Block>,
    frames: Vec<InlineFrame>,
    handlers: Vec<IrHandler>,
    anchors: Vec<(Reg, Reg)>,
    next_reg: Reg,
    /// Methods on the inline path (prevents recursive inlining).
    inline_chain: Vec<MethodId>,
    /// bc pc (frame 0) → trap block.
    trap_blocks: HashMap<(u32, bool), BlockId>,
}

impl Builder<'_, '_> {
    fn alloc_regs(&mut self, count: u32) -> Reg {
        let base = self.next_reg;
        self.next_reg += count;
        base
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block { insts: vec![], term: Term::Jump(DEAD) });
        (self.blocks.len() - 1) as BlockId
    }

    fn trap_block(&mut self, bc_pc: u32, switch: bool) -> BlockId {
        if let Some(&b) = self.trap_blocks.get(&(bc_pc, switch)) {
            return b;
        }
        let reason =
            if switch { DeoptReason::SwitchSpeculation } else { DeoptReason::BranchSpeculation };
        let b = self.new_block();
        self.blocks[b as usize].term = Term::Trap { bc_pc, reason };
        self.trap_blocks.insert((bc_pc, switch), b);
        b
    }

    /// Translates one method into blocks, returning the bc-pc → block map.
    ///
    /// `ret` is `Some((dst, cont))` for inlined frames: `Return`s copy into
    /// `dst` (when non-void) and jump to `cont`.
    #[allow(clippy::too_many_lines)]
    fn translate_frame(
        &mut self,
        method: MethodId,
        local_base: Reg,
        stack_base: Reg,
        parent: Option<(u16, u32)>,
        ret: Option<(Option<Reg>, BlockId)>,
        speculate: bool,
    ) -> Result<HashMap<u32, BlockId>, CrashInfo> {
        let m = self.ctx.program.method(method);
        let frame_idx = self.frames.len() as u16;
        self.frames.push(InlineFrame {
            method,
            local_base,
            num_locals: u32::from(m.num_locals),
            parent,
        });
        self.anchors.push((local_base, local_base + u32::from(m.num_locals)));
        let depths = stack_depths(self.ctx.program, m);
        let profile = &self.ctx.profiles[method.0 as usize];

        // Leaders: entry, branch targets, fall-throughs after control
        // transfers, handler targets.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(0);
        for (pc, insn) in m.code.iter().enumerate() {
            for t in insn.targets() {
                leaders.insert(t);
            }
            let transfers =
                insn.is_terminator() || matches!(insn, Insn::JumpIfTrue(_) | Insn::JumpIfFalse(_));
            if transfers && pc + 1 < m.code.len() {
                leaders.insert(pc as u32 + 1);
            }
        }
        for h in &m.handlers {
            leaders.insert(h.target);
        }
        let mut block_map: HashMap<u32, BlockId> = HashMap::new();
        for &pc in &leaders {
            let b = self.new_block();
            block_map.insert(pc, b);
        }
        let local = |i: u16| local_base + u32::from(i);
        let stack = |d: i32| stack_base + d as u32;

        for &leader in &leaders {
            let mut cur = block_map[&leader];
            if depths[leader as usize] < 0 {
                // Unreachable code: a trap is a safe filler (never runs).
                self.blocks[cur as usize].term =
                    Term::Trap { bc_pc: 0, reason: DeoptReason::BranchSpeculation };
                continue;
            }
            let mut d = depths[leader as usize];
            let mut pc = leader;
            let emit =
                |blocks: &mut Vec<Block>, dst: Option<Reg>, op: Op, at: u32, cur: BlockId| {
                    blocks[cur as usize].insts.push(Inst { dst, op, frame: frame_idx, bc_pc: at });
                };
            loop {
                if pc != leader && leaders.contains(&pc) {
                    self.blocks[cur as usize].term = Term::Jump(block_map[&pc]);
                    break;
                }
                let insn = m.code[pc as usize].clone();
                match insn {
                    Insn::IConst(v) => {
                        emit(&mut self.blocks, Some(stack(d)), Op::ConstI(v), pc, cur);
                        d += 1;
                    }
                    Insn::LConst(v) => {
                        emit(&mut self.blocks, Some(stack(d)), Op::ConstL(v), pc, cur);
                        d += 1;
                    }
                    Insn::SConst(s) => {
                        emit(&mut self.blocks, Some(stack(d)), Op::ConstS(s), pc, cur);
                        d += 1;
                    }
                    Insn::NullConst => {
                        emit(&mut self.blocks, Some(stack(d)), Op::ConstNull, pc, cur);
                        d += 1;
                    }
                    Insn::Load(i) => {
                        emit(&mut self.blocks, Some(stack(d)), Op::Copy(local(i)), pc, cur);
                        d += 1;
                    }
                    Insn::Store(i) => {
                        emit(&mut self.blocks, Some(local(i)), Op::Copy(stack(d - 1)), pc, cur);
                        d -= 1;
                    }
                    Insn::Pop => d -= 1,
                    Insn::Dup => {
                        emit(&mut self.blocks, Some(stack(d)), Op::Copy(stack(d - 1)), pc, cur);
                        d += 1;
                    }
                    Insn::Dup2 => {
                        emit(&mut self.blocks, Some(stack(d)), Op::Copy(stack(d - 2)), pc, cur);
                        emit(&mut self.blocks, Some(stack(d + 1)), Op::Copy(stack(d - 1)), pc, cur);
                        d += 2;
                    }
                    Insn::GetStatic { class, field } => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d)),
                            Op::GetStatic { class, field },
                            pc,
                            cur,
                        );
                        d += 1;
                    }
                    Insn::PutStatic { class, field } => {
                        emit(
                            &mut self.blocks,
                            None,
                            Op::PutStatic { class, field, val: stack(d - 1) },
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::GetField { field } => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 1)),
                            Op::GetField { obj: stack(d - 1), field },
                            pc,
                            cur,
                        );
                    }
                    Insn::PutField { field } => {
                        emit(
                            &mut self.blocks,
                            None,
                            Op::PutField { obj: stack(d - 2), field, val: stack(d - 1) },
                            pc,
                            cur,
                        );
                        d -= 2;
                    }
                    Insn::NewObject(class) => {
                        emit(&mut self.blocks, Some(stack(d)), Op::NewObject(class), pc, cur);
                        d += 1;
                    }
                    Insn::NewArray(kind) => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 1)),
                            Op::NewArray { kind, len: stack(d - 1) },
                            pc,
                            cur,
                        );
                    }
                    Insn::NewMultiArray { kind, dims } => {
                        let n = i32::from(dims);
                        let regs: Vec<Reg> = (0..n).map(|i| stack(d - n + i)).collect();
                        emit(
                            &mut self.blocks,
                            Some(stack(d - n)),
                            Op::NewMultiArray { kind, dims: regs },
                            pc,
                            cur,
                        );
                        d = d - n + 1;
                    }
                    Insn::ArrLoad(kind) => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::ArrLoad { kind, arr: stack(d - 2), idx: stack(d - 1) },
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::ArrStore(kind) => {
                        emit(
                            &mut self.blocks,
                            None,
                            Op::ArrStore {
                                kind,
                                arr: stack(d - 3),
                                idx: stack(d - 2),
                                val: stack(d - 1),
                            },
                            pc,
                            cur,
                        );
                        d -= 3;
                    }
                    Insn::ArrLen => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 1)),
                            Op::ArrLen(stack(d - 1)),
                            pc,
                            cur,
                        );
                    }
                    Insn::IAdd
                    | Insn::ISub
                    | Insn::IMul
                    | Insn::IDiv
                    | Insn::IRem
                    | Insn::IShl
                    | Insn::IShr
                    | Insn::IUshr
                    | Insn::IAnd
                    | Insn::IOr
                    | Insn::IXor => {
                        let kind = match insn {
                            Insn::IAdd => BinKind::Add,
                            Insn::ISub => BinKind::Sub,
                            Insn::IMul => BinKind::Mul,
                            Insn::IDiv => BinKind::Div,
                            Insn::IRem => BinKind::Rem,
                            Insn::IShl => BinKind::Shl,
                            Insn::IShr => BinKind::Shr,
                            Insn::IUshr => BinKind::Ushr,
                            Insn::IAnd => BinKind::And,
                            Insn::IOr => BinKind::Or,
                            _ => BinKind::Xor,
                        };
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::BinI(kind, stack(d - 2), stack(d - 1)),
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::LAdd
                    | Insn::LSub
                    | Insn::LMul
                    | Insn::LDiv
                    | Insn::LRem
                    | Insn::LShl
                    | Insn::LShr
                    | Insn::LUshr
                    | Insn::LAnd
                    | Insn::LOr
                    | Insn::LXor => {
                        let kind = match insn {
                            Insn::LAdd => BinKind::Add,
                            Insn::LSub => BinKind::Sub,
                            Insn::LMul => BinKind::Mul,
                            Insn::LDiv => BinKind::Div,
                            Insn::LRem => BinKind::Rem,
                            Insn::LShl => BinKind::Shl,
                            Insn::LShr => BinKind::Shr,
                            Insn::LUshr => BinKind::Ushr,
                            Insn::LAnd => BinKind::And,
                            Insn::LOr => BinKind::Or,
                            _ => BinKind::Xor,
                        };
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::BinL(kind, stack(d - 2), stack(d - 1)),
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::INeg => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::NegI(stack(d - 1)), pc, cur);
                    }
                    Insn::LNeg => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::NegL(stack(d - 1)), pc, cur);
                    }
                    Insn::I2L => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::I2L(stack(d - 1)), pc, cur);
                    }
                    Insn::L2I => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::L2I(stack(d - 1)), pc, cur);
                    }
                    Insn::I2B => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::I2B(stack(d - 1)), pc, cur);
                    }
                    Insn::I2S => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::I2S(stack(d - 1)), pc, cur);
                    }
                    Insn::L2S => {
                        emit(&mut self.blocks, Some(stack(d - 1)), Op::L2S(stack(d - 1)), pc, cur);
                    }
                    Insn::Bool2S => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 1)),
                            Op::Bool2S(stack(d - 1)),
                            pc,
                            cur,
                        );
                    }
                    Insn::ICmp(op) => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::CmpI(op, stack(d - 2), stack(d - 1)),
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::LCmp(op) => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::CmpL(op, stack(d - 2), stack(d - 1)),
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::RefEq | Insn::RefNe => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::RefCmp {
                                eq: matches!(insn, Insn::RefEq),
                                a: stack(d - 2),
                                b: stack(d - 1),
                            },
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::SConcat => {
                        emit(
                            &mut self.blocks,
                            Some(stack(d - 2)),
                            Op::Concat(stack(d - 2), stack(d - 1)),
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::Jump(target) => {
                        self.blocks[cur as usize].term = Term::Jump(block_map[&target]);
                        break;
                    }
                    Insn::JumpIfTrue(target) | Insn::JumpIfFalse(target) => {
                        let cond = stack(d - 1);
                        d -= 1;
                        let (true_pc, false_pc) = if matches!(insn, Insn::JumpIfTrue(_)) {
                            (target, pc + 1)
                        } else {
                            (pc + 1, target)
                        };
                        let mut if_true = block_map[&true_pc];
                        let mut if_false = block_map[&false_pc];
                        if speculate && frame_idx == 0 && d == 0 {
                            if let Some(bp) = profile.branch(pc) {
                                if bp.taken == 0
                                    && bp.not_taken >= MIN_PROFILE
                                    && !profile.no_speculate.contains(&true_pc)
                                {
                                    if_true = self.trap_block(true_pc, false);
                                } else if bp.not_taken == 0
                                    && bp.taken >= MIN_PROFILE
                                    && !profile.no_speculate.contains(&false_pc)
                                {
                                    if_false = self.trap_block(false_pc, false);
                                }
                            }
                        }
                        self.blocks[cur as usize].term = Term::Branch { cond, if_true, if_false };
                        break;
                    }
                    Insn::TableSwitch { ref cases, default } => {
                        let scrut = stack(d - 1);
                        d -= 1;
                        let total: u64 =
                            (0..cases.len()).map(|i| profile.switch_arm_hits(pc, i)).sum::<u64>()
                                + profile.switch_arm_hits(pc, usize::MAX);
                        let spec = speculate && frame_idx == 0 && d == 0 && total >= MIN_PROFILE;
                        let mut ir_cases = Vec::with_capacity(cases.len());
                        for (i, (label, target)) in cases.iter().enumerate() {
                            let block = if spec
                                && profile.switch_arm_hits(pc, i) == 0
                                && !profile.no_speculate.contains(target)
                            {
                                self.trap_block(*target, true)
                            } else {
                                block_map[target]
                            };
                            ir_cases.push((*label, block));
                        }
                        let default_block = if spec
                            && profile.switch_arm_hits(pc, usize::MAX) == 0
                            && !profile.no_speculate.contains(&default)
                        {
                            self.trap_block(default, true)
                        } else {
                            block_map[&default]
                        };
                        self.blocks[cur as usize].term =
                            Term::Switch { scrut, cases: ir_cases, default: default_block };
                        break;
                    }
                    Insn::InvokeStatic(callee) | Insn::InvokeInstance(callee) => {
                        let callee_m = self.ctx.program.method(callee);
                        let argc = callee_m.arg_slots() as i32;
                        let has_ret = callee_m.ret != cse_lang::Ty::Void;
                        let args: Vec<Reg> = (0..argc).map(|i| stack(d - argc + i)).collect();
                        let dst = if has_ret { Some(stack(d - argc)) } else { None };
                        // Inlining is profile-driven: plan-forced compiles
                        // (speculate = false, the `count=0` analog) skip it,
                        // which also keeps forced per-call execution modes
                        // enforceable during compilation-space enumeration.
                        let inline_ok = self.ctx.optimizing()
                            && self.ctx.speculate
                            && callee_m.code.len() <= self.ctx.inline_limit
                            && !self.inline_chain.contains(&callee)
                            && self.inline_chain.len() <= 3
                            && self.frames.len() < 6;
                        if inline_ok {
                            if !callee_m.handlers.is_empty()
                                && self.ctx.active(BugId::HsInlineHandlerAssert)
                            {
                                return Err(self.ctx.crash(
                                    BugId::HsInlineHandlerAssert,
                                    format!(
                                        "inlining {} with exception handlers",
                                        self.ctx.program.qualified_name(callee)
                                    ),
                                ));
                            }
                            let callee_locals = self.alloc_regs(u32::from(callee_m.num_locals));
                            let callee_depths = stack_depths(self.ctx.program, callee_m);
                            let callee_max =
                                callee_depths.iter().copied().max().unwrap_or(0).max(0) as u32 + 2;
                            let callee_stack = self.alloc_regs(callee_max);
                            for (i, &arg) in args.iter().enumerate() {
                                emit(
                                    &mut self.blocks,
                                    Some(callee_locals + i as u32),
                                    Op::Copy(arg),
                                    pc,
                                    cur,
                                );
                            }
                            let cont = self.new_block();
                            self.inline_chain.push(callee);
                            let callee_map = self.translate_frame(
                                callee,
                                callee_locals,
                                callee_stack,
                                Some((frame_idx, pc)),
                                Some((dst, cont)),
                                false,
                            )?;
                            self.inline_chain.pop();
                            self.blocks[cur as usize].term = Term::Jump(callee_map[&0]);
                            cur = cont;
                        } else {
                            emit(&mut self.blocks, dst, Op::Call { method: callee, args }, pc, cur);
                        }
                        d = d - argc + i32::from(has_ret);
                    }
                    Insn::Return => {
                        self.blocks[cur as usize].term = match ret {
                            Some((_, cont)) => Term::Jump(cont),
                            None => Term::Return(None),
                        };
                        break;
                    }
                    Insn::ReturnVal => {
                        let value = stack(d - 1);
                        match ret {
                            Some((Some(dst), cont)) => {
                                emit(&mut self.blocks, Some(dst), Op::Copy(value), pc, cur);
                                self.blocks[cur as usize].term = Term::Jump(cont);
                            }
                            Some((None, cont)) => {
                                self.blocks[cur as usize].term = Term::Jump(cont);
                            }
                            None => {
                                self.blocks[cur as usize].term = Term::Return(Some(value));
                            }
                        }
                        break;
                    }
                    Insn::ThrowUser => {
                        emit(&mut self.blocks, None, Op::ThrowUser(stack(d - 1)), pc, cur);
                        // Unreachable fallback: the op always raises.
                        self.blocks[cur as usize].term =
                            Term::Trap { bc_pc: pc, reason: DeoptReason::BranchSpeculation };
                        break;
                    }
                    Insn::Rethrow(slot) => {
                        emit(&mut self.blocks, None, Op::Rethrow(local(slot)), pc, cur);
                        self.blocks[cur as usize].term =
                            Term::Trap { bc_pc: pc, reason: DeoptReason::BranchSpeculation };
                        break;
                    }
                    Insn::Println(kind) => {
                        emit(
                            &mut self.blocks,
                            None,
                            Op::Println { kind, val: stack(d - 1) },
                            pc,
                            cur,
                        );
                        d -= 1;
                    }
                    Insn::Mute => emit(&mut self.blocks, None, Op::Mute, pc, cur),
                    Insn::Unmute => emit(&mut self.blocks, None, Op::Unmute, pc, cur),
                }
                pc += 1;
                if pc as usize >= m.code.len() {
                    unreachable!("verified code cannot fall off the end");
                }
            }
        }
        // Translate the exception table.
        for h in &m.handlers {
            self.handlers.push(IrHandler {
                frame: frame_idx,
                start_bc: h.start,
                end_bc: h.end,
                target: block_map[&h.target],
                save_reg: h.save_slot.map(|s| local_base + u32::from(s)),
            });
        }
        Ok(block_map)
    }
}

/// Abstract operand-stack depth at every bytecode pc (−1 = unreachable).
fn stack_depths(program: &BProgram, method: &BMethod) -> Vec<i32> {
    let code = &method.code;
    let mut depths = vec![-1i32; code.len()];
    let mut worklist: Vec<(u32, i32)> = vec![(0, 0)];
    for h in &method.handlers {
        worklist.push((h.target, 0));
    }
    while let Some((pc, d)) = worklist.pop() {
        let slot = &mut depths[pc as usize];
        if *slot >= 0 {
            continue;
        }
        *slot = d;
        let insn = &code[pc as usize];
        let next_d = d + stack_delta(program, insn);
        match insn {
            Insn::Jump(t) => worklist.push((*t, next_d)),
            Insn::JumpIfTrue(t) | Insn::JumpIfFalse(t) => {
                worklist.push((*t, next_d));
                worklist.push((pc + 1, next_d));
            }
            Insn::TableSwitch { cases, default } => {
                for (_, t) in cases {
                    worklist.push((*t, next_d));
                }
                worklist.push((*default, next_d));
            }
            Insn::Return | Insn::ReturnVal | Insn::ThrowUser | Insn::Rethrow(_) => {}
            _ => worklist.push((pc + 1, next_d)),
        }
    }
    depths
}

/// Stack-depth effect of an instruction (branches report the depth after
/// popping their condition/scrutinee).
fn stack_delta(program: &BProgram, insn: &Insn) -> i32 {
    match insn {
        Insn::IConst(_)
        | Insn::LConst(_)
        | Insn::SConst(_)
        | Insn::NullConst
        | Insn::Load(_)
        | Insn::GetStatic { .. }
        | Insn::NewObject(_)
        | Insn::Dup => 1,
        Insn::Dup2 => 2,
        Insn::Store(_)
        | Insn::Pop
        | Insn::PutStatic { .. }
        | Insn::JumpIfTrue(_)
        | Insn::JumpIfFalse(_)
        | Insn::TableSwitch { .. }
        | Insn::Println(_)
        | Insn::ThrowUser => -1,
        Insn::GetField { .. }
        | Insn::NewArray(_)
        | Insn::ArrLen
        | Insn::INeg
        | Insn::LNeg
        | Insn::I2L
        | Insn::L2I
        | Insn::I2B
        | Insn::I2S
        | Insn::L2S
        | Insn::Bool2S
        | Insn::Jump(_)
        | Insn::Return
        | Insn::ReturnVal
        | Insn::Rethrow(_)
        | Insn::Mute
        | Insn::Unmute => 0,
        Insn::PutField { .. } => -2,
        Insn::NewMultiArray { dims, .. } => 1 - i32::from(*dims),
        Insn::ArrLoad(_)
        | Insn::IAdd
        | Insn::ISub
        | Insn::IMul
        | Insn::IDiv
        | Insn::IRem
        | Insn::IShl
        | Insn::IShr
        | Insn::IUshr
        | Insn::IAnd
        | Insn::IOr
        | Insn::IXor
        | Insn::LAdd
        | Insn::LSub
        | Insn::LMul
        | Insn::LDiv
        | Insn::LRem
        | Insn::LShl
        | Insn::LShr
        | Insn::LUshr
        | Insn::LAnd
        | Insn::LOr
        | Insn::LXor
        | Insn::ICmp(_)
        | Insn::LCmp(_)
        | Insn::RefEq
        | Insn::RefNe
        | Insn::SConcat => -1,
        Insn::ArrStore(_) => -3,
        Insn::InvokeStatic(id) | Insn::InvokeInstance(id) => {
            let callee = program.method(*id);
            let ret = i32::from(callee.ret != cse_lang::Ty::Void);
            ret - callee.arg_slots() as i32
        }
    }
}
