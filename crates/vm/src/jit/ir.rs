//! The JIT's register-based intermediate representation.
//!
//! Design notes, because they carry correctness weight:
//!
//! * **Fixed anchor registers.** Every inline frame's locals occupy a fixed
//!   register range; register `local_base + i` always holds local `i` of
//!   that frame. This makes de-optimization trivial (the interpreter frame
//!   is rebuilt by copying the anchor range) and makes exception-handler
//!   entry sound (bytecode handlers start with an empty operand stack, so
//!   all live state is in locals). Optimization passes must not eliminate,
//!   reorder across throwing instructions, or relocate writes to anchor
//!   registers.
//! * **Fixed stack registers.** During IR construction, operand-stack slot
//!   `d` of a frame maps to register `stack_base + d`, so control-flow
//!   merges need no phis. The resulting IR is copy-heavy by construction —
//!   which is precisely what the copy-propagation and value-numbering
//!   passes exist to clean up, as in a real compiler.
//! * **Provenance.** Every instruction carries its originating inline
//!   frame and bytecode pc, which exception dispatch and uncommon traps
//!   use to find handlers and rebuild interpreter state.

use cse_bytecode::{ArrKind, ClassId, CmpOp, MethodId, PrintKind, StrId};

use crate::config::Tier;
use crate::events::DeoptReason;
use crate::faults::BugId;

/// A virtual register.
pub type Reg = u32;

/// A basic-block id.
pub type BlockId = u32;

/// Integer binary operators (operands already promoted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    /// Throws `ArithmeticException` on a zero divisor.
    Div,
    /// Throws `ArithmeticException` on a zero divisor.
    Rem,
    Shl,
    Shr,
    Ushr,
    And,
    Or,
    Xor,
}

impl BinKind {
    /// Whether the operator can raise an exception.
    pub fn can_throw(self) -> bool {
        matches!(self, BinKind::Div | BinKind::Rem)
    }

    /// Whether the operator is commutative (used by value numbering).
    pub fn commutative(self) -> bool {
        matches!(self, BinKind::Add | BinKind::Mul | BinKind::And | BinKind::Or | BinKind::Xor)
    }
}

/// An IR operation. `dst` lives on [`Inst`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    ConstI(i32),
    ConstL(i64),
    ConstS(StrId),
    ConstNull,
    Copy(Reg),
    BinI(BinKind, Reg, Reg),
    BinL(BinKind, Reg, Reg),
    NegI(Reg),
    NegL(Reg),
    I2L(Reg),
    L2I(Reg),
    I2B(Reg),
    I2S(Reg),
    L2S(Reg),
    Bool2S(Reg),
    Concat(Reg, Reg),
    CmpI(CmpOp, Reg, Reg),
    CmpL(CmpOp, Reg, Reg),
    /// `eq` selects `==` vs `!=`.
    RefCmp {
        eq: bool,
        a: Reg,
        b: Reg,
    },
    GetStatic {
        class: ClassId,
        field: u32,
    },
    PutStatic {
        class: ClassId,
        field: u32,
        val: Reg,
    },
    GetField {
        obj: Reg,
        field: u32,
    },
    PutField {
        obj: Reg,
        field: u32,
        val: Reg,
    },
    NewObject(ClassId),
    NewArray {
        kind: ArrKind,
        len: Reg,
    },
    NewMultiArray {
        kind: ArrKind,
        dims: Vec<Reg>,
    },
    ArrLoad {
        kind: ArrKind,
        arr: Reg,
        idx: Reg,
    },
    ArrStore {
        kind: ArrKind,
        arr: Reg,
        idx: Reg,
        val: Reg,
    },
    ArrLen(Reg),
    /// A non-inlined call back into the VM's dispatch.
    Call {
        method: MethodId,
        args: Vec<Reg>,
    },
    Println {
        kind: PrintKind,
        val: Reg,
    },
    Mute,
    Unmute,
    /// Raises a user exception with the code in the register.
    ThrowUser(Reg),
    /// Re-raises the packed exception stored in the register (finally).
    Rethrow(Reg),
    /// Fault-injection marker: executing this corrupts the heap (models a
    /// JIT bug writing past an object; detected by the next GC).
    CorruptHeap {
        bug: BugId,
    },
    /// Fault-injection marker: executing this crashes the process (models
    /// wild compiled code).
    CrashOnExec {
        bug: BugId,
    },
    /// Fault-injection marker: burns `factor` units of fuel (models
    /// pathologically slow compiled code — the performance-bug class).
    BurnFuel {
        factor: u32,
    },
}

impl Op {
    /// Whether executing this op can raise a MiniJava exception.
    pub fn can_throw(&self) -> bool {
        match self {
            Op::BinI(kind, ..) | Op::BinL(kind, ..) => kind.can_throw(),
            Op::GetField { .. }
            | Op::PutField { .. }
            | Op::NewArray { .. }
            | Op::NewMultiArray { .. }
            | Op::ArrLoad { .. }
            | Op::ArrStore { .. }
            | Op::ArrLen(_)
            | Op::Call { .. }
            | Op::ThrowUser(_)
            | Op::Rethrow(_)
            | Op::NewObject(_) => true,
            _ => false,
        }
    }

    /// Whether the op is pure: no side effects, no exceptions, and its
    /// result depends only on its operands (eligible for CSE/LICM).
    pub fn is_pure(&self) -> bool {
        match self {
            Op::ConstI(_)
            | Op::ConstL(_)
            | Op::ConstS(_)
            | Op::ConstNull
            | Op::Copy(_)
            | Op::NegI(_)
            | Op::NegL(_)
            | Op::I2L(_)
            | Op::L2I(_)
            | Op::I2B(_)
            | Op::I2S(_)
            | Op::L2S(_)
            | Op::Bool2S(_)
            | Op::Concat(..)
            | Op::CmpI(..)
            | Op::CmpL(..)
            | Op::RefCmp { .. } => true,
            Op::BinI(kind, ..) | Op::BinL(kind, ..) => !kind.can_throw(),
            _ => false,
        }
    }

    /// Source registers read by this op.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Op::ConstI(_)
            | Op::ConstL(_)
            | Op::ConstS(_)
            | Op::ConstNull
            | Op::Mute
            | Op::Unmute
            | Op::GetStatic { .. }
            | Op::NewObject(_)
            | Op::CorruptHeap { .. }
            | Op::CrashOnExec { .. }
            | Op::BurnFuel { .. } => vec![],
            Op::Copy(r)
            | Op::NegI(r)
            | Op::NegL(r)
            | Op::I2L(r)
            | Op::L2I(r)
            | Op::I2B(r)
            | Op::I2S(r)
            | Op::L2S(r)
            | Op::Bool2S(r)
            | Op::ArrLen(r)
            | Op::ThrowUser(r)
            | Op::Rethrow(r) => vec![*r],
            Op::BinI(_, a, b)
            | Op::BinL(_, a, b)
            | Op::Concat(a, b)
            | Op::CmpI(_, a, b)
            | Op::CmpL(_, a, b) => vec![*a, *b],
            Op::RefCmp { a, b, .. } => vec![*a, *b],
            Op::PutStatic { val, .. } => vec![*val],
            Op::GetField { obj, .. } => vec![*obj],
            Op::PutField { obj, val, .. } => vec![*obj, *val],
            Op::NewArray { len, .. } => vec![*len],
            Op::NewMultiArray { dims, .. } => dims.clone(),
            Op::ArrLoad { arr, idx, .. } => vec![*arr, *idx],
            Op::ArrStore { arr, idx, val, .. } => vec![*arr, *idx, *val],
            Op::Call { args, .. } => args.clone(),
            Op::Println { val, .. } => vec![*val],
        }
    }

    /// Rewrites source registers through `f`.
    pub fn map_sources(&mut self, f: impl Fn(Reg) -> Reg) {
        match self {
            Op::ConstI(_)
            | Op::ConstL(_)
            | Op::ConstS(_)
            | Op::ConstNull
            | Op::Mute
            | Op::Unmute
            | Op::GetStatic { .. }
            | Op::NewObject(_)
            | Op::CorruptHeap { .. }
            | Op::CrashOnExec { .. }
            | Op::BurnFuel { .. } => {}
            Op::Copy(r)
            | Op::NegI(r)
            | Op::NegL(r)
            | Op::I2L(r)
            | Op::L2I(r)
            | Op::I2B(r)
            | Op::I2S(r)
            | Op::L2S(r)
            | Op::Bool2S(r)
            | Op::ArrLen(r)
            | Op::ThrowUser(r)
            | Op::Rethrow(r) => *r = f(*r),
            Op::BinI(_, a, b)
            | Op::BinL(_, a, b)
            | Op::Concat(a, b)
            | Op::CmpI(_, a, b)
            | Op::CmpL(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::RefCmp { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::PutStatic { val, .. } => *val = f(*val),
            Op::GetField { obj, .. } => *obj = f(*obj),
            Op::PutField { obj, val, .. } => {
                *obj = f(*obj);
                *val = f(*val);
            }
            Op::NewArray { len, .. } => *len = f(*len),
            Op::NewMultiArray { dims, .. } => {
                for d in dims {
                    *d = f(*d);
                }
            }
            Op::ArrLoad { arr, idx, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
            }
            Op::ArrStore { arr, idx, val, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *val = f(*val);
            }
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::Println { val, .. } => *val = f(*val),
        }
    }

    /// Whether the op writes memory or performs I/O (a barrier for code
    /// motion of memory reads).
    pub fn is_memory_write(&self) -> bool {
        matches!(
            self,
            Op::PutStatic { .. }
                | Op::PutField { .. }
                | Op::ArrStore { .. }
                | Op::Call { .. }
                | Op::Println { .. }
                | Op::Mute
                | Op::Unmute
                | Op::CorruptHeap { .. }
        )
    }
}

impl std::fmt::Display for Op {
    /// One-line disassembly, used by `CSE_DUMP_IR` dumps and by
    /// [`crate::jit::verify::IrVerifyError`] reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::ConstI(v) => write!(f, "const.i {v}"),
            Op::ConstL(v) => write!(f, "const.l {v}"),
            Op::ConstS(s) => write!(f, "const.s str{}", s.0),
            Op::ConstNull => write!(f, "const.null"),
            Op::Copy(r) => write!(f, "copy r{r}"),
            Op::BinI(kind, a, b) => write!(f, "{}.i r{a}, r{b}", bin_mnemonic(*kind)),
            Op::BinL(kind, a, b) => write!(f, "{}.l r{a}, r{b}", bin_mnemonic(*kind)),
            Op::NegI(r) => write!(f, "neg.i r{r}"),
            Op::NegL(r) => write!(f, "neg.l r{r}"),
            Op::I2L(r) => write!(f, "i2l r{r}"),
            Op::L2I(r) => write!(f, "l2i r{r}"),
            Op::I2B(r) => write!(f, "i2b r{r}"),
            Op::I2S(r) => write!(f, "i2s r{r}"),
            Op::L2S(r) => write!(f, "l2s r{r}"),
            Op::Bool2S(r) => write!(f, "bool2s r{r}"),
            Op::Concat(a, b) => write!(f, "concat r{a}, r{b}"),
            Op::CmpI(op, a, b) => write!(f, "cmp.i.{op:?} r{a}, r{b}"),
            Op::CmpL(op, a, b) => write!(f, "cmp.l.{op:?} r{a}, r{b}"),
            Op::RefCmp { eq, a, b } => {
                write!(f, "refcmp.{} r{a}, r{b}", if *eq { "eq" } else { "ne" })
            }
            Op::GetStatic { class, field } => write!(f, "getstatic c{}.{field}", class.0),
            Op::PutStatic { class, field, val } => {
                write!(f, "putstatic c{}.{field}, r{val}", class.0)
            }
            Op::GetField { obj, field } => write!(f, "getfield r{obj}.{field}"),
            Op::PutField { obj, field, val } => write!(f, "putfield r{obj}.{field}, r{val}"),
            Op::NewObject(class) => write!(f, "new c{}", class.0),
            Op::NewArray { kind, len } => write!(f, "newarray {kind:?}, r{len}"),
            Op::NewMultiArray { kind, dims } => {
                write!(f, "newmultiarray {kind:?}")?;
                for d in dims {
                    write!(f, ", r{d}")?;
                }
                Ok(())
            }
            Op::ArrLoad { kind, arr, idx } => write!(f, "arrload {kind:?}, r{arr}[r{idx}]"),
            Op::ArrStore { kind, arr, idx, val } => {
                write!(f, "arrstore {kind:?}, r{arr}[r{idx}], r{val}")
            }
            Op::ArrLen(r) => write!(f, "arrlen r{r}"),
            Op::Call { method, args } => {
                write!(f, "call m{}(", method.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "r{a}")?;
                }
                write!(f, ")")
            }
            Op::Println { kind, val } => write!(f, "println.{kind:?} r{val}"),
            Op::Mute => write!(f, "mute"),
            Op::Unmute => write!(f, "unmute"),
            Op::ThrowUser(r) => write!(f, "throw r{r}"),
            Op::Rethrow(r) => write!(f, "rethrow r{r}"),
            Op::CorruptHeap { bug } => write!(f, "corrupt-heap {bug:?}"),
            Op::CrashOnExec { bug } => write!(f, "crash-on-exec {bug:?}"),
            Op::BurnFuel { factor } => write!(f, "burn-fuel {factor}"),
        }
    }
}

fn bin_mnemonic(kind: BinKind) -> &'static str {
    match kind {
        BinKind::Add => "add",
        BinKind::Sub => "sub",
        BinKind::Mul => "mul",
        BinKind::Div => "div",
        BinKind::Rem => "rem",
        BinKind::Shl => "shl",
        BinKind::Shr => "shr",
        BinKind::Ushr => "ushr",
        BinKind::And => "and",
        BinKind::Or => "or",
        BinKind::Xor => "xor",
    }
}

/// An IR instruction with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Destination register, when the op produces a value.
    pub dst: Option<Reg>,
    pub op: Op,
    /// The inline frame this instruction originates from (0 = outermost).
    pub frame: u16,
    /// The bytecode pc (within that frame's method) it lowers.
    pub bc_pc: u32,
}

impl std::fmt::Display for Inst {
    /// `r5 = add.i r1, r2  @f0:pc12` (destination omitted when absent).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(dst) = self.dst {
            write!(f, "r{dst} = ")?;
        }
        write!(f, "{}  @f{}:pc{}", self.op, self.frame, self.bc_pc)
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Jump(BlockId),
    Branch {
        cond: Reg,
        if_true: BlockId,
        if_false: BlockId,
    },
    Switch {
        scrut: Reg,
        cases: Vec<(i32, BlockId)>,
        default: BlockId,
    },
    /// Return from the compiled function (outermost frame only).
    Return(Option<Reg>),
    /// Uncommon trap: de-optimize and resume interpretation at `bc_pc`
    /// of the outermost method, rebuilding locals from anchor registers.
    Trap {
        bc_pc: u32,
        reason: DeoptReason,
    },
}

impl Term {
    /// Successor block ids (empty for `Return`/`Trap`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Branch { if_true, if_false, .. } => vec![*if_true, *if_false],
            Term::Switch { cases, default, .. } => {
                let mut out: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                out.push(*default);
                out
            }
            Term::Return(_) | Term::Trap { .. } => vec![],
        }
    }

    /// Source registers read by the terminator.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Term::Branch { cond, .. } => vec![*cond],
            Term::Switch { scrut, .. } => vec![*scrut],
            Term::Return(Some(r)) => vec![*r],
            _ => vec![],
        }
    }

    /// Rewrites source registers through `f`.
    pub fn map_sources(&mut self, f: impl Fn(Reg) -> Reg) {
        match self {
            Term::Branch { cond, .. } => *cond = f(*cond),
            Term::Switch { scrut, .. } => *scrut = f(*scrut),
            Term::Return(Some(r)) => *r = f(*r),
            _ => {}
        }
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Jump(b) => write!(f, "jump b{b}"),
            Term::Branch { cond, if_true, if_false } => {
                write!(f, "branch r{cond} ? b{if_true} : b{if_false}")
            }
            Term::Switch { scrut, cases, default } => {
                write!(f, "switch r{scrut} [")?;
                for (i, (v, b)) in cases.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v} => b{b}")?;
                }
                write!(f, "] else b{default}")
            }
            Term::Return(Some(r)) => write!(f, "return r{r}"),
            Term::Return(None) => write!(f, "return"),
            Term::Trap { bc_pc, reason } => write!(f, "trap @pc{bc_pc} ({reason:?})"),
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub insts: Vec<Inst>,
    pub term: Term,
}

/// One inline frame of the compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineFrame {
    pub method: MethodId,
    /// First register of this frame's locals.
    pub local_base: Reg,
    pub num_locals: u32,
    /// Parent frame index and the call-site bytecode pc within the parent,
    /// for exception unwinding across inlined calls. `None` for frame 0.
    pub parent: Option<(u16, u32)>,
}

/// An exception-handler entry of the compiled function, in the bytecode
/// coordinates of one inline frame.
#[derive(Debug, Clone, PartialEq)]
pub struct IrHandler {
    pub frame: u16,
    pub start_bc: u32,
    pub end_bc: u32,
    pub target: BlockId,
    /// Anchor register to park the packed exception in, when the source
    /// handler had a save slot.
    pub save_reg: Option<Reg>,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    pub method: MethodId,
    pub tier: Tier,
    /// Entry is block 0.
    pub blocks: Vec<Block>,
    pub num_regs: u32,
    pub frames: Vec<InlineFrame>,
    pub handlers: Vec<IrHandler>,
    /// For OSR variants: the loop-header bytecode pc this function enters
    /// at. Entry still is block 0 (a prologue that jumps to the header).
    pub osr_entry: Option<u32>,
    /// Registers that are anchors (some frame's locals); passes must treat
    /// writes to these conservatively.
    pub anchor_limit_per_frame: Vec<(Reg, Reg)>,
}

impl IrFunc {
    /// Whether `reg` is an anchor register of any inline frame.
    pub fn is_anchor(&self, reg: Reg) -> bool {
        self.anchor_limit_per_frame.iter().any(|&(lo, hi)| reg >= lo && reg < hi)
    }

    /// Total instruction count (for size heuristics and tests).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor lists per block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.blocks.iter().enumerate() {
            for succ in block.term.successors() {
                preds[succ as usize].push(id as BlockId);
            }
        }
        // Handler targets are reachable from every block whose instructions
        // may throw within the covered range; approximate with an edge from
        // each block containing a covered throwing instruction.
        for handler in &self.handlers {
            for (id, block) in self.blocks.iter().enumerate() {
                let throws_in_range = block.insts.iter().any(|inst| {
                    inst.frame == handler.frame
                        && inst.op.can_throw()
                        && inst.bc_pc >= handler.start_bc
                        && inst.bc_pc < handler.end_bc
                });
                if throws_in_range && !preds[handler.target as usize].contains(&(id as BlockId)) {
                    preds[handler.target as usize].push(id as BlockId);
                }
            }
        }
        preds
    }

    /// Full-function disassembly (used by the `CSE_DUMP_IR` debug path and
    /// verifier incident payloads).
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fn m{} {} regs={} osr={:?}",
            self.method.0, self.tier, self.num_regs, self.osr_entry
        );
        for (i, frame) in self.frames.iter().enumerate() {
            let _ = writeln!(
                out,
                "  frame f{i}: m{} locals r{}..r{} parent={:?}",
                frame.method.0,
                frame.local_base,
                frame.local_base + frame.num_locals,
                frame.parent
            );
        }
        for h in &self.handlers {
            let _ = writeln!(
                out,
                "  handler f{} pc[{}, {}) -> b{} save={:?}",
                h.frame, h.start_bc, h.end_bc, h.target, h.save_reg
            );
        }
        for (id, block) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "b{id}:");
            for inst in &block.insts {
                let _ = writeln!(out, "    {inst}");
            }
            let _ = writeln!(out, "    {}", block.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(Op::BinI(BinKind::Div, 0, 1).can_throw());
        assert!(!Op::BinI(BinKind::Add, 0, 1).can_throw());
        assert!(Op::BinI(BinKind::Add, 0, 1).is_pure());
        assert!(!Op::BinI(BinKind::Rem, 0, 1).is_pure());
        assert!(Op::PutField { obj: 0, field: 0, val: 1 }.is_memory_write());
        assert!(!Op::GetField { obj: 0, field: 0 }.is_memory_write());
        assert!(Op::GetField { obj: 0, field: 0 }.can_throw());
    }

    #[test]
    fn sources_and_mapping() {
        let mut op = Op::ArrStore { kind: ArrKind::I32, arr: 1, idx: 2, val: 3 };
        assert_eq!(op.sources(), vec![1, 2, 3]);
        op.map_sources(|r| r + 10);
        assert_eq!(op.sources(), vec![11, 12, 13]);
    }

    #[test]
    fn term_successors() {
        let t = Term::Switch { scrut: 0, cases: vec![(1, 4), (2, 5)], default: 6 };
        assert_eq!(t.successors(), vec![4, 5, 6]);
        assert!(Term::Return(None).successors().is_empty());
    }

    #[test]
    fn bin_kind_commutativity() {
        assert!(BinKind::Add.commutative());
        assert!(BinKind::Xor.commutative());
        assert!(!BinKind::Sub.commutative());
        assert!(!BinKind::Shl.commutative());
    }
}
