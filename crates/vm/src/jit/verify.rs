//! Pass-boundary static verifier for the JIT IR — the third oracle.
//!
//! The CSE differential oracle only notices a miscompile once it changes
//! *output*; a pass that corrupts IR which a later pass masks (or which
//! only mis-executes on unexercised paths) is invisible to it. This module
//! is the engineering analogue of LLVM's `-verify-each`: after `build()`
//! and (in [`VerifyMode::Each`]) after every optimization pass it proves
//!
//! 1. **CFG well-formedness** — terminator successors and handler targets
//!    in-bounds, register operands within `num_regs`, frame/handler tables
//!    internally consistent with `anchor_limit_per_frame`;
//! 2. **def-before-use** — a forward definite-assignment dataflow over all
//!    paths (including per-throw-point exceptional edges), plus a
//!    dominance check via [`cfg::Dominators`] for single-assignment
//!    registers;
//! 3. **a type lattice** — int/long/str/ref categories inferred from `Op`
//!    signatures and joined at merge points, exactly as the bytecode
//!    verifier does for stack slots;
//! 4. **effect-flag soundness** — `is_pure()` / `can_throw()` /
//!    `is_memory_write()` audited against an independent table of each
//!    op's actual shape, so LICM/GCM/DCE cannot be lied to.
//!
//! Verification is *observation only*: defects are collected and reported
//! through `ExecutionResult::ir_verify`, never altering compilation or
//! execution, so enabling the verifier cannot perturb the differential
//! oracle. Checking is deterministic (fixed iteration order, no hashing),
//! which keeps campaign digests bit-identical across worker counts.
//!
//! Deliberate leniencies, each matched to how the IR is actually built and
//! executed (`run_ir` starts every register as `I(0)`, so "undefined" is a
//! static notion here, not a runtime trap):
//!
//! * Anchor registers (frame locals) are treated as defined at entry with
//!   their declared bytecode types — the interpreter seeds frame-0 args
//!   and deopt rebuilds frames from anchors, and the front end enforces
//!   source-level definite assignment for locals.
//! * Conflicting types only join to `Any` (reported at a *use* that needs
//!   a specific category), since dead merge paths legitimately carry
//!   mismatched slots.
//! * Unreachable blocks are shape-checked but excluded from dataflow; the
//!   builder emits unreachable `Trap` filler blocks by design.

use std::collections::VecDeque;

use cse_bytecode::{ArrKind, BProgram, PrintKind};
use cse_lang::Ty;

use super::cfg::Dominators;
use super::ir::{BinKind, BlockId, Inst, IrFunc, Op, Reg, Term};

pub use crate::config::VerifyMode;

/// Pass label for the IR as produced by `build()`.
pub const PASS_BUILD: &str = "build";
/// Pass label for the [`VerifyMode::Boundary`] check after the last pass.
pub const PASS_PIPELINE_EXIT: &str = "pipeline-exit";

/// Cap on reported defects per verification point, so one catastrophically
/// corrupted function cannot flood incident logs.
const MAX_ERRORS: usize = 8;

/// A defect found in an [`IrFunc`], attributed to the pass after which it
/// was first observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrVerifyError {
    /// `Class.method` of the compiled function.
    pub method: String,
    /// The pass the IR was verified after ([`PASS_BUILD`] for fresh IR).
    pub pass: &'static str,
    /// Block containing the defect.
    pub block: BlockId,
    /// Instruction index within the block; `None` for function-level or
    /// terminator defects.
    pub inst: Option<usize>,
    /// The violated invariant.
    pub detail: String,
    /// One-line disassembly of the offending instruction or terminator.
    pub disasm: Option<String>,
    /// Full pre-pass IR dump (`IrFunc::pretty`), attached by the pipeline
    /// driver where a snapshot exists — `None` for [`PASS_BUILD`] (there
    /// is no earlier IR) and in boundary mode.
    pub pre_ir: Option<String>,
}

impl std::fmt::Display for IrVerifyError {
    /// First line carries the parseable signature (`method: after pass:
    /// …`); the pre-pass IR dump, when present, follows on later lines so
    /// triage's first-line shape extraction is unaffected.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: after {}: b{}", self.method, self.pass, self.block)?;
        if let Some(i) = self.inst {
            write!(f, "[{i}]")?;
        }
        write!(f, ": {}", self.detail)?;
        if let Some(disasm) = &self.disasm {
            write!(f, " in `{disasm}`")?;
        }
        if let Some(pre_ir) = &self.pre_ir {
            write!(f, "\n--- IR before {} ---\n{}", self.pass, pre_ir.trim_end())?;
        }
        Ok(())
    }
}

/// Verifies one function, attributing defects to `pass`. Returns every
/// violated invariant (capped at [`MAX_ERRORS`]); an empty vector means the
/// IR is well-formed.
pub fn check_func(func: &IrFunc, program: &BProgram, pass: &'static str) -> Vec<IrVerifyError> {
    let mut checker = Checker {
        func,
        program,
        pass,
        method: program.qualified_name(func.method),
        errors: Vec::new(),
    };
    checker.check_shape();
    // The dataflow indexes blocks/registers/methods by id, so it only runs
    // on shape-clean IR.
    if checker.errors.is_empty() {
        let in_states = checker.compute_states();
        checker.check_dataflow(&in_states);
        checker.check_single_defs(&in_states);
    }
    checker.errors
}

/// Audits claimed effect flags for `op` against an independent table of
/// the op's actual shape. `Ok(())` means the claims are sound. Exposed so
/// tests can feed deliberately wrong claims; the verifier itself calls it
/// with the values `ir.rs` reports.
pub fn check_effect_claims(op: &Op, pure: bool, throws: bool, writes: bool) -> Result<(), String> {
    if pure && (throws || writes) {
        return Err(format!(
            "op claims is_pure but also can_throw={throws}/is_memory_write={writes}"
        ));
    }
    let (want_pure, want_throw, want_write) = expected_effects(op);
    if pure != want_pure {
        return Err(format!("op claims is_pure={pure}, shape says {want_pure}"));
    }
    if throws != want_throw {
        return Err(format!("op claims can_throw={throws}, shape says {want_throw}"));
    }
    if writes != want_write {
        return Err(format!("op claims is_memory_write={writes}, shape says {want_write}"));
    }
    Ok(())
}

/// Ground-truth effect flags `(pure, can_throw, memory_write)` derived
/// from each op's shape, independent of the methods on [`Op`].
fn expected_effects(op: &Op) -> (bool, bool, bool) {
    match op {
        Op::ConstI(_)
        | Op::ConstL(_)
        | Op::ConstS(_)
        | Op::ConstNull
        | Op::Copy(_)
        | Op::NegI(_)
        | Op::NegL(_)
        | Op::I2L(_)
        | Op::L2I(_)
        | Op::I2B(_)
        | Op::I2S(_)
        | Op::L2S(_)
        | Op::Bool2S(_)
        | Op::Concat(..)
        | Op::CmpI(..)
        | Op::CmpL(..)
        | Op::RefCmp { .. } => (true, false, false),
        Op::BinI(kind, ..) | Op::BinL(kind, ..) => {
            // Division by zero throws; everything else is pure arithmetic.
            if matches!(kind, BinKind::Div | BinKind::Rem) {
                (false, true, false)
            } else {
                (true, false, false)
            }
        }
        // Reads of mutable memory: not pure, but neither throwing nor
        // writing.
        Op::GetStatic { .. } => (false, false, false),
        // Null check on the receiver / index check on the array.
        Op::GetField { .. } | Op::ArrLoad { .. } | Op::ArrLen(_) => (false, true, false),
        Op::PutField { .. } | Op::ArrStore { .. } => (false, true, true),
        Op::PutStatic { .. } => (false, false, true),
        // Allocation can exhaust the heap; NewArray also checks its length.
        Op::NewObject(_) | Op::NewArray { .. } | Op::NewMultiArray { .. } => (false, true, false),
        // A call may do anything.
        Op::Call { .. } => (false, true, true),
        Op::Println { .. } | Op::Mute | Op::Unmute => (false, false, true),
        Op::ThrowUser(_) | Op::Rethrow(_) => (false, true, false),
        Op::CorruptHeap { .. } => (false, false, true),
        Op::CrashOnExec { .. } | Op::BurnFuel { .. } => (false, false, false),
    }
}

/// Abstract register contents: a definite-assignment bit fused with a
/// small type lattice. `Unset < {I, L, S, R, Null} < Any`, except that
/// `Null` joins with either reference category without losing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VType {
    /// Not assigned on every path (bottom: wins every join).
    Unset,
    /// 32-bit int (also byte and boolean).
    I,
    /// 64-bit long (also packed exceptions).
    L,
    /// String reference.
    S,
    /// Object or array reference.
    R,
    /// The null literal (compatible with both reference categories).
    Null,
    /// Assigned, but of merge-dependent category; accepted wherever a
    /// specific category is not required.
    Any,
}

fn join(a: VType, b: VType) -> VType {
    match (a, b) {
        _ if a == b => a,
        (VType::Unset, _) | (_, VType::Unset) => VType::Unset,
        (VType::Null, VType::R) | (VType::R, VType::Null) => VType::R,
        (VType::Null, VType::S) | (VType::S, VType::Null) => VType::S,
        _ => VType::Any,
    }
}

fn of_ty(ty: &Ty) -> VType {
    match ty {
        Ty::Int | Ty::Byte | Ty::Bool => VType::I,
        Ty::Long => VType::L,
        Ty::Str => VType::S,
        _ => VType::R,
    }
}

fn of_elem(kind: ArrKind) -> VType {
    match kind {
        ArrKind::I32 | ArrKind::I8 | ArrKind::Bool => VType::I,
        ArrKind::I64 => VType::L,
        ArrKind::Str => VType::S,
        ArrKind::Ref => VType::R,
    }
}

fn int_ok(t: VType) -> bool {
    matches!(t, VType::I | VType::Any)
}

fn long_ok(t: VType) -> bool {
    matches!(t, VType::L | VType::Any)
}

fn str_ok(t: VType) -> bool {
    matches!(t, VType::S | VType::Null | VType::Any)
}

fn obj_ok(t: VType) -> bool {
    matches!(t, VType::R | VType::Null | VType::Any)
}

fn ref_like_ok(t: VType) -> bool {
    matches!(t, VType::R | VType::S | VType::Null | VType::Any)
}

/// Whether `actual` fits a declared bytecode type's category.
fn fits_declared(declared: &Ty, actual: VType) -> bool {
    match of_ty(declared) {
        VType::I => int_ok(actual),
        VType::L => long_ok(actual),
        VType::S => str_ok(actual),
        VType::R => obj_ok(actual),
        _ => true,
    }
}

/// Mirrors `exec::find_handler`: the handler for an exception raised at
/// (`frame`, `bc_pc`), walking outward through inline frames.
fn handler_for(func: &IrFunc, mut frame: u16, mut bc_pc: u32) -> Option<usize> {
    loop {
        if let Some(idx) = func
            .handlers
            .iter()
            .position(|h| h.frame == frame && bc_pc >= h.start_bc && bc_pc < h.end_bc)
        {
            return Some(idx);
        }
        match func.frames[frame as usize].parent {
            Some((parent, call_pc)) => {
                frame = parent;
                bc_pc = call_pc;
            }
            None => return None,
        }
    }
}

struct Checker<'a> {
    func: &'a IrFunc,
    program: &'a BProgram,
    pass: &'static str,
    method: String,
    errors: Vec<IrVerifyError>,
}

impl Checker<'_> {
    fn report(&mut self, block: BlockId, inst: Option<usize>, detail: String) {
        if self.errors.len() >= MAX_ERRORS {
            return;
        }
        let disasm = inst.map_or_else(
            || self.func.blocks.get(block as usize).map(|b| b.term.to_string()),
            |i| {
                self.func
                    .blocks
                    .get(block as usize)
                    .and_then(|b| b.insts.get(i))
                    .map(Inst::to_string)
            },
        );
        self.errors.push(IrVerifyError {
            method: self.method.clone(),
            pass: self.pass,
            block,
            inst,
            detail,
            disasm,
            pre_ir: None,
        });
    }

    // ---- Phase 1: shape (CFG, tables, indices, arity, effect flags) ----

    fn check_shape(&mut self) {
        let func = self.func;
        let nblocks = func.blocks.len() as u32;
        if func.blocks.is_empty() {
            self.report(0, None, "function has no blocks (entry must be b0)".into());
            return;
        }
        self.check_frames();
        self.check_handlers();
        for (b, block) in func.blocks.iter().enumerate() {
            let b = b as BlockId;
            for (i, inst) in block.insts.iter().enumerate() {
                self.check_inst_shape(b, i, inst);
            }
            for succ in block.term.successors() {
                if succ >= nblocks {
                    self.report(b, None, format!("terminator targets dangling block b{succ}"));
                }
            }
            for r in block.term.sources() {
                if r >= func.num_regs {
                    self.report(b, None, format!("terminator reads out-of-range register r{r}"));
                }
            }
        }
    }

    fn check_frames(&mut self) {
        let func = self.func;
        if func.frames.is_empty() {
            self.report(0, None, "function has no inline frames".into());
            return;
        }
        if func.anchor_limit_per_frame.len() != func.frames.len() {
            self.report(
                0,
                None,
                format!(
                    "anchor_limit_per_frame has {} entries for {} frames",
                    func.anchor_limit_per_frame.len(),
                    func.frames.len()
                ),
            );
        }
        for (f, frame) in func.frames.iter().enumerate() {
            if frame.method.0 as usize >= self.program.methods.len() {
                self.report(
                    0,
                    None,
                    format!("frame f{f} references unknown method m{}", frame.method.0),
                );
                continue;
            }
            let declared = u32::from(self.program.method(frame.method).num_locals);
            if frame.num_locals != declared {
                self.report(
                    0,
                    None,
                    format!(
                        "frame f{f} has {} locals but m{} declares {declared}",
                        frame.num_locals, frame.method.0
                    ),
                );
            }
            if frame.local_base + frame.num_locals > func.num_regs {
                self.report(
                    0,
                    None,
                    format!(
                        "frame f{f} locals r{}..r{} exceed num_regs={}",
                        frame.local_base,
                        frame.local_base + frame.num_locals,
                        func.num_regs
                    ),
                );
            }
            match (f, frame.parent) {
                (0, Some(_)) => self.report(0, None, "frame f0 must not have a parent".into()),
                (0, None) => {}
                (_, None) => self.report(0, None, format!("inlined frame f{f} has no parent")),
                (_, Some((p, _))) if usize::from(p) >= f => {
                    self.report(0, None, format!("frame f{f} parent f{p} does not precede it"));
                }
                _ => {}
            }
            if let Some(&(lo, hi)) = func.anchor_limit_per_frame.get(f) {
                if lo != frame.local_base || hi != frame.local_base + frame.num_locals {
                    self.report(
                        0,
                        None,
                        format!(
                            "anchor range ({lo}, {hi}) of f{f} disagrees with locals r{}..r{}",
                            frame.local_base,
                            frame.local_base + frame.num_locals
                        ),
                    );
                }
            }
        }
    }

    fn check_handlers(&mut self) {
        let func = self.func;
        for (h, handler) in func.handlers.iter().enumerate() {
            if usize::from(handler.frame) >= func.frames.len() {
                self.report(
                    0,
                    None,
                    format!("handler #{h} references unknown frame f{}", handler.frame),
                );
                continue;
            }
            if handler.target >= func.blocks.len() as u32 {
                self.report(
                    0,
                    None,
                    format!("handler #{h} targets dangling block b{}", handler.target),
                );
            }
            if handler.start_bc >= handler.end_bc {
                self.report(
                    0,
                    None,
                    format!(
                        "handler #{h} covers empty pc range [{}, {})",
                        handler.start_bc, handler.end_bc
                    ),
                );
            }
            if let Some(save) = handler.save_reg {
                let frame = &func.frames[usize::from(handler.frame)];
                let in_frame =
                    save >= frame.local_base && save < frame.local_base + frame.num_locals;
                if !in_frame {
                    self.report(
                        0,
                        None,
                        format!(
                            "handler #{h} save register r{save} is not an anchor of f{}",
                            handler.frame
                        ),
                    );
                }
            }
        }
    }

    fn check_inst_shape(&mut self, b: BlockId, i: usize, inst: &Inst) {
        let func = self.func;
        let program = self.program;
        if let Some(dst) = inst.dst {
            if dst >= func.num_regs {
                self.report(
                    b,
                    Some(i),
                    format!("destination r{dst} out of range (num_regs={})", func.num_regs),
                );
            }
        }
        for r in inst.op.sources() {
            if r >= func.num_regs {
                self.report(
                    b,
                    Some(i),
                    format!("source r{r} out of range (num_regs={})", func.num_regs),
                );
            }
        }
        if usize::from(inst.frame) >= func.frames.len() {
            self.report(b, Some(i), format!("provenance references unknown frame f{}", inst.frame));
        }
        // Program-index bounds; arity depends on them being valid.
        match &inst.op {
            Op::ConstS(s) if s.0 as usize >= program.strings.len() => {
                self.report(b, Some(i), format!("unknown string constant str{}", s.0));
                return;
            }
            Op::GetStatic { class, field } | Op::PutStatic { class, field, .. } => {
                if class.0 as usize >= program.classes.len() {
                    self.report(b, Some(i), format!("unknown class c{}", class.0));
                    return;
                }
                if *field as usize >= program.class(*class).static_fields.len() {
                    self.report(b, Some(i), format!("unknown static field c{}.{field}", class.0));
                    return;
                }
            }
            Op::NewObject(class) if class.0 as usize >= program.classes.len() => {
                self.report(b, Some(i), format!("unknown class c{}", class.0));
                return;
            }
            Op::NewMultiArray { dims, .. } if dims.is_empty() => {
                self.report(b, Some(i), "newmultiarray with zero dimensions".into());
            }
            Op::Call { method, args } => {
                if method.0 as usize >= program.methods.len() {
                    self.report(b, Some(i), format!("call to unknown method m{}", method.0));
                    return;
                }
                let want = program.method(*method).arg_slots();
                if args.len() != want {
                    self.report(
                        b,
                        Some(i),
                        format!("call passes {} arguments, m{} takes {want}", args.len(), method.0),
                    );
                }
            }
            _ => {}
        }
        self.check_dst_arity(b, i, inst);
        if let Err(detail) = check_effect_claims(
            &inst.op,
            inst.op.is_pure(),
            inst.op.can_throw(),
            inst.op.is_memory_write(),
        ) {
            self.report(b, Some(i), detail);
        }
    }

    fn check_dst_arity(&mut self, b: BlockId, i: usize, inst: &Inst) {
        // `Either`: CrashOnExec may keep the destination of the op it
        // replaced, and a non-void call result may be discarded.
        let required = match &inst.op {
            Op::PutStatic { .. }
            | Op::PutField { .. }
            | Op::ArrStore { .. }
            | Op::Println { .. }
            | Op::Mute
            | Op::Unmute
            | Op::ThrowUser(_)
            | Op::Rethrow(_)
            | Op::CorruptHeap { .. }
            | Op::BurnFuel { .. } => Some(false),
            Op::CrashOnExec { .. } => None,
            Op::Call { method, .. } => {
                if self.program.method(*method).ret == Ty::Void {
                    Some(false)
                } else {
                    None
                }
            }
            _ => Some(true),
        };
        match (required, inst.dst) {
            (Some(true), None) => {
                self.report(b, Some(i), "value-producing op has no destination".into());
            }
            (Some(false), Some(dst)) => {
                self.report(b, Some(i), format!("effect-only op writes destination r{dst}"));
            }
            _ => {}
        }
    }

    // ---- Phase 2: definite assignment + type lattice ----

    /// Entry state: anchors carry their declared types, everything else is
    /// `Unset` (see the module docs for why anchors count as defined).
    fn entry_state(&self) -> Vec<VType> {
        let mut state = vec![VType::Unset; self.func.num_regs as usize];
        for frame in &self.func.frames {
            let m = self.program.method(frame.method);
            for i in 0..frame.num_locals {
                let ty = m
                    .local_types
                    .get(i as usize)
                    .and_then(|t| t.as_ref())
                    .map(of_ty)
                    .unwrap_or(VType::Any);
                state[(frame.local_base + i) as usize] = ty;
            }
        }
        state
    }

    /// Runs the forward dataflow to fixpoint. `None` = unreachable block.
    /// Error reporting happens in a separate pass over the fixed states so
    /// iteration to convergence cannot duplicate reports.
    fn compute_states(&self) -> Vec<Option<Vec<VType>>> {
        let func = self.func;
        let n = func.blocks.len();
        let mut in_states: Vec<Option<Vec<VType>>> = vec![None; n];
        in_states[0] = Some(self.entry_state());
        let mut queue: VecDeque<BlockId> = VecDeque::from([0]);
        let mut queued = vec![false; n];
        queued[0] = true;
        while let Some(b) = queue.pop_front() {
            queued[b as usize] = false;
            let mut state = in_states[b as usize].clone().expect("queued block has a state");
            let block = &func.blocks[b as usize];
            for inst in &block.insts {
                if inst.op.can_throw() {
                    if let Some(h) = handler_for(func, inst.frame, inst.bc_pc) {
                        let handler = &func.handlers[h];
                        let mut hstate = state.clone();
                        if let Some(save) = handler.save_reg {
                            // The dispatcher parks the packed exception
                            // (a long) in the save register.
                            hstate[save as usize] = VType::L;
                        }
                        flow_into(handler.target, &hstate, &mut in_states, &mut queue, &mut queued);
                    }
                }
                if let Some(dst) = inst.dst {
                    state[dst as usize] = self.result_type(&inst.op, &state);
                }
            }
            for succ in block.term.successors() {
                flow_into(succ, &state, &mut in_states, &mut queue, &mut queued);
            }
        }
        in_states
    }

    /// The type an op's destination holds, independent of operand errors
    /// (so one defect does not cascade).
    fn result_type(&self, op: &Op, state: &[VType]) -> VType {
        match op {
            Op::ConstI(_) => VType::I,
            Op::ConstL(_) => VType::L,
            Op::ConstS(_) => VType::S,
            Op::ConstNull => VType::Null,
            Op::Copy(r) => {
                let t = state[*r as usize];
                if t == VType::Unset {
                    VType::Any
                } else {
                    t
                }
            }
            Op::BinI(..) | Op::NegI(_) | Op::L2I(_) | Op::I2B(_) => VType::I,
            Op::BinL(..) | Op::NegL(_) | Op::I2L(_) => VType::L,
            Op::I2S(_) | Op::L2S(_) | Op::Bool2S(_) | Op::Concat(..) => VType::S,
            Op::CmpI(..) | Op::CmpL(..) | Op::RefCmp { .. } => VType::I,
            Op::GetStatic { class, field } => {
                of_ty(&self.program.class(*class).static_fields[*field as usize].ty)
            }
            // The receiver's class is not tracked, so field loads are
            // category-opaque.
            Op::GetField { .. } => VType::Any,
            Op::NewObject(_) | Op::NewArray { .. } | Op::NewMultiArray { .. } => VType::R,
            Op::ArrLoad { kind, .. } => of_elem(*kind),
            Op::ArrLen(_) => VType::I,
            Op::Call { method, .. } => {
                let ret = &self.program.method(*method).ret;
                if *ret == Ty::Void {
                    VType::Any
                } else {
                    of_ty(ret)
                }
            }
            _ => VType::Any,
        }
    }

    /// Re-walks every reachable block over the fixed states and reports
    /// undefined uses and category mismatches.
    fn check_dataflow(&mut self, in_states: &[Option<Vec<VType>>]) {
        for (b, maybe_state) in in_states.iter().enumerate() {
            let Some(in_state) = maybe_state else { continue };
            let b = b as BlockId;
            let mut state = in_state.clone();
            let block = &self.func.blocks[b as usize];
            for (i, inst) in block.insts.iter().enumerate() {
                self.check_inst_types(b, i, inst, &state);
                if let Some(dst) = inst.dst {
                    state[dst as usize] = self.result_type(&inst.op, &state);
                }
            }
            self.check_term(b, &block.term, &state);
        }
    }

    /// Reports a use of `r` that is undefined or outside `want`'s
    /// category. Returns whether the operand was acceptable.
    fn use_reg(
        &mut self,
        b: BlockId,
        i: usize,
        r: Reg,
        state: &[VType],
        want: &str,
        ok: fn(VType) -> bool,
    ) {
        let t = state[r as usize];
        if t == VType::Unset {
            self.report(b, Some(i), format!("use of undefined register r{r}"));
        } else if !ok(t) {
            self.report(b, Some(i), format!("r{r}: expected {want}, found {t:?}"));
        }
    }

    fn check_inst_types(&mut self, b: BlockId, i: usize, inst: &Inst, state: &[VType]) {
        let any = |_: VType| true;
        match &inst.op {
            Op::ConstI(_)
            | Op::ConstL(_)
            | Op::ConstS(_)
            | Op::ConstNull
            | Op::GetStatic { .. }
            | Op::NewObject(_)
            | Op::Mute
            | Op::Unmute
            | Op::CorruptHeap { .. }
            | Op::CrashOnExec { .. }
            | Op::BurnFuel { .. } => {}
            Op::Copy(r) => self.use_reg(b, i, *r, state, "a value", any),
            Op::BinI(_, x, y) | Op::CmpI(_, x, y) => {
                self.use_reg(b, i, *x, state, "int", int_ok);
                self.use_reg(b, i, *y, state, "int", int_ok);
            }
            Op::BinL(kind, x, y) => {
                self.use_reg(b, i, *x, state, "long", long_ok);
                // Long shifts take an int shift amount, as in bytecode.
                if matches!(kind, BinKind::Shl | BinKind::Shr | BinKind::Ushr) {
                    self.use_reg(b, i, *y, state, "int (shift amount)", int_ok);
                } else {
                    self.use_reg(b, i, *y, state, "long", long_ok);
                }
            }
            Op::CmpL(_, x, y) => {
                self.use_reg(b, i, *x, state, "long", long_ok);
                self.use_reg(b, i, *y, state, "long", long_ok);
            }
            Op::NegI(r) | Op::I2L(r) | Op::I2B(r) | Op::I2S(r) | Op::Bool2S(r) => {
                self.use_reg(b, i, *r, state, "int", int_ok);
            }
            Op::NegL(r) | Op::L2I(r) | Op::L2S(r) => {
                self.use_reg(b, i, *r, state, "long", long_ok);
            }
            Op::Concat(x, y) => {
                self.use_reg(b, i, *x, state, "string", str_ok);
                self.use_reg(b, i, *y, state, "string", str_ok);
            }
            Op::RefCmp { a, b: rb, .. } => {
                self.use_reg(b, i, *a, state, "a reference", ref_like_ok);
                self.use_reg(b, i, *rb, state, "a reference", ref_like_ok);
            }
            Op::PutStatic { class, field, val } => {
                let declared = self.program.class(*class).static_fields[*field as usize].ty.clone();
                self.use_field_value(b, i, *val, state, &declared);
            }
            Op::GetField { obj, .. } => self.use_reg(b, i, *obj, state, "an object", obj_ok),
            Op::PutField { obj, val, .. } => {
                self.use_reg(b, i, *obj, state, "an object", obj_ok);
                self.use_reg(b, i, *val, state, "a value", any);
            }
            Op::NewArray { len, .. } => self.use_reg(b, i, *len, state, "int", int_ok),
            Op::NewMultiArray { dims, .. } => {
                for d in dims {
                    self.use_reg(b, i, *d, state, "int", int_ok);
                }
            }
            Op::ArrLoad { arr, idx, .. } => {
                self.use_reg(b, i, *arr, state, "an array", obj_ok);
                self.use_reg(b, i, *idx, state, "int", int_ok);
            }
            Op::ArrStore { kind, arr, idx, val } => {
                self.use_reg(b, i, *arr, state, "an array", obj_ok);
                self.use_reg(b, i, *idx, state, "int", int_ok);
                let elem = *kind;
                let t = state[*val as usize];
                if t == VType::Unset {
                    self.report(b, Some(i), format!("use of undefined register r{val}"));
                } else if !elem_ok(elem, t) {
                    self.report(
                        b,
                        Some(i),
                        format!("r{val}: expected {elem:?} element, found {t:?}"),
                    );
                }
            }
            Op::ArrLen(r) => self.use_reg(b, i, *r, state, "an array", obj_ok),
            Op::Call { method, args } => {
                let m = self.program.method(*method);
                let receiver = usize::from(!m.is_static);
                for (k, arg) in args.iter().enumerate() {
                    if k < receiver {
                        self.use_reg(b, i, *arg, state, "a receiver", obj_ok);
                    } else if let Some(param) = m.params.get(k - receiver) {
                        self.use_field_value(b, i, *arg, state, &param.clone());
                    }
                }
            }
            Op::Println { kind, val } => match kind {
                PrintKind::Int | PrintKind::Bool => self.use_reg(b, i, *val, state, "int", int_ok),
                PrintKind::Long => self.use_reg(b, i, *val, state, "long", long_ok),
                PrintKind::Str => self.use_reg(b, i, *val, state, "string", str_ok),
            },
            Op::ThrowUser(r) => self.use_reg(b, i, *r, state, "int (exception code)", int_ok),
            Op::Rethrow(r) => self.use_reg(b, i, *r, state, "long (packed exception)", long_ok),
        }
    }

    fn use_field_value(&mut self, b: BlockId, i: usize, r: Reg, state: &[VType], declared: &Ty) {
        let t = state[r as usize];
        if t == VType::Unset {
            self.report(b, Some(i), format!("use of undefined register r{r}"));
        } else if !fits_declared(declared, t) {
            self.report(b, Some(i), format!("r{r}: expected {declared:?}, found {t:?}"));
        }
    }

    fn check_term(&mut self, b: BlockId, term: &Term, state: &[VType]) {
        let term_err = |s: &mut Self, detail: String| s.report(b, None, detail);
        match term {
            Term::Jump(_) | Term::Trap { .. } => {}
            Term::Branch { cond, .. } => {
                let t = state[*cond as usize];
                if t == VType::Unset {
                    term_err(self, format!("branch on undefined register r{cond}"));
                } else if !int_ok(t) {
                    term_err(self, format!("branch condition r{cond}: expected int, found {t:?}"));
                }
            }
            Term::Switch { scrut, .. } => {
                let t = state[*scrut as usize];
                if t == VType::Unset {
                    term_err(self, format!("switch on undefined register r{scrut}"));
                } else if !int_ok(t) {
                    term_err(self, format!("switch scrutinee r{scrut}: expected int, found {t:?}"));
                }
            }
            Term::Return(val) => {
                let ret = self.program.method(self.func.method).ret.clone();
                match val {
                    None => {
                        if ret != Ty::Void {
                            term_err(self, format!("return without value from {ret:?} method"));
                        }
                    }
                    Some(r) => {
                        if ret == Ty::Void {
                            term_err(self, format!("void method returns r{r}"));
                        } else {
                            let t = state[*r as usize];
                            if t == VType::Unset {
                                term_err(self, format!("return of undefined register r{r}"));
                            } else if !fits_declared(&ret, t) {
                                term_err(
                                    self,
                                    format!("return r{r}: expected {ret:?}, found {t:?}"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- Phase 3: dominance-based def-before-use (cfg::Dominators) ----

    /// For every non-anchor register with exactly one static definition,
    /// the defining block must dominate every (reachable) cross-block use.
    /// Same-block ordering is already enforced precisely by the dataflow
    /// phase.
    ///
    /// Skipped when the function has exception handlers: the block-level
    /// handler edges in [`IrFunc::predecessors`] (which `Dominators`
    /// consumes) are a different approximation than the runtime's
    /// first-match, parent-frame-walking dispatch that the dataflow
    /// mirrors — a covered throw in an inlined frame unwinds to a
    /// *parent*-frame handler the block graph has no edge for, and
    /// overlapping handlers get edges for throws the first match would
    /// swallow. Either mismatch turns a definitely-assigned use into a
    /// spurious dominance failure, so exceptional functions rely on the
    /// dataflow alone (which subsumes this check).
    fn check_single_defs(&mut self, in_states: &[Option<Vec<VType>>]) {
        let func = self.func;
        if !func.handlers.is_empty() {
            return;
        }
        let mut def_count = vec![0u32; func.num_regs as usize];
        let mut def_site = vec![0 as BlockId; func.num_regs as usize];
        for (b, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                if let Some(dst) = inst.dst {
                    if !func.is_anchor(dst) {
                        def_count[dst as usize] += 1;
                        def_site[dst as usize] = b as BlockId;
                    }
                }
            }
        }
        let doms = Dominators::compute(func);
        for (b, block) in func.blocks.iter().enumerate() {
            let b = b as BlockId;
            if in_states[b as usize].is_none() {
                continue;
            }
            let uses = block
                .insts
                .iter()
                .enumerate()
                .flat_map(|(i, inst)| inst.op.sources().into_iter().map(move |r| (Some(i), r)))
                .chain(block.term.sources().into_iter().map(|r| (None, r)));
            for (i, r) in uses {
                if func.is_anchor(r) || def_count[r as usize] != 1 {
                    continue;
                }
                let db = def_site[r as usize];
                if db != b && !doms.dominates(db, b) {
                    self.report(
                        b,
                        i,
                        format!("single-assignment r{r} is defined in b{db}, which does not dominate this use"),
                    );
                }
            }
        }
    }
}

fn elem_ok(kind: ArrKind, t: VType) -> bool {
    match of_elem(kind) {
        VType::I => int_ok(t),
        VType::L => long_ok(t),
        VType::S => str_ok(t),
        _ => obj_ok(t),
    }
}

/// Joins `state` into `target`'s in-state, queueing it on change (or on
/// first reach).
fn flow_into(
    target: BlockId,
    state: &[VType],
    in_states: &mut [Option<Vec<VType>>],
    queue: &mut VecDeque<BlockId>,
    queued: &mut [bool],
) {
    let changed = match &mut in_states[target as usize] {
        Some(existing) => {
            let mut changed = false;
            for (dst, &src) in existing.iter_mut().zip(state) {
                let joined = join(*dst, src);
                if joined != *dst {
                    *dst = joined;
                    changed = true;
                }
            }
            changed
        }
        slot @ None => {
            *slot = Some(state.to_vec());
            true
        }
    };
    if changed && !queued[target as usize] {
        queued[target as usize] = true;
        queue.push_back(target);
    }
}
