//! Per-pass translation validation — a symbolic refinement checker.
//!
//! The static verifier ([`super::verify`]) proves the IR after a pass is
//! *well-formed*; this module proves the pass *refined the semantics* of
//! its input. For every `(before, after)` pair it
//!
//! 1. **symbolically evaluates** both functions per basic block into one
//!    shared hash-consed value graph of pure expressions (the same
//!    canonicalization GVN uses: commutative operands sorted, constants
//!    folded with exactly the semantics of `passes::constfold`'s correct
//!    path) plus an ordered observable-effect trace per block — calls,
//!    heap stores, allocations, prints, throws, potential `div 0` throw
//!    points, and writes to anchor registers (the deopt/handler-visible
//!    state);
//! 2. **checks a simulation relation** block-by-block: effect traces must
//!    match event-for-event with equal argument value nodes, terminators
//!    must transfer control to corresponding blocks with equal operand
//!    values, and guards may strengthen but never weaken;
//! 3. on mismatch emits a **pass-attributed counterexample**: the smallest
//!    diverging effect/value node, with full pre/post IR via
//!    [`IrFunc::pretty`].
//!
//! # Bounded loop summarization
//!
//! Loops are never unrolled. Each block is summarized exactly once with
//! *opaque entry inputs*: a register read before any in-block definition
//! resolves to its unique whole-function pure definition when one exists
//! (what lets LICM hoists and GCM sinks validate — a single-definition
//! pure value denotes the same term wherever it is computed), and to an
//! opaque per-`(block, register)` symbol otherwise. This is a per-
//! iteration simulation argument: if every block pair agrees on effects
//! and successors given equal entry states, the traces agree for any
//! number of iterations.
//!
//! # Pass contracts
//!
//! Every registered pass declares a [`TvContract`]
//! (`passes::tv_contract`, completeness-checked by a unit test):
//!
//! * [`TvContract::EffectPreserving`] — may only remove, reorder, or
//!   rewrite provably pure computation; effects, anchor writes, and
//!   guards are untouchable (copyprop, gvn, licm, gcm, loopopt, dce, …).
//!   Folding control flow whose operand is a *proven constant* is still
//!   allowed — it is semantics-preserving for any pass.
//! * [`TvContract::GuardIntroducing`] — additionally may replace
//!   conditional control flow on proven constants and *strengthen*
//!   guards (introduce `Trap`s); weakening remains a defect (constfold,
//!   vp-global). The whole-pipeline boundary check also runs under this,
//!   the weakest, contract.
//! * [`TvContract::LayoutOnly`] — must be a location/name change only: a
//!   register-renaming bijection (anchors fixed) under which every
//!   instruction and terminator is identical (regalloc, codegen).
//!
//! # Soundness caveats (deliberate, documented in DESIGN.md)
//!
//! * Memory reads are value-graph nodes, not trace events: a read is
//!   assumed stable between invalidating writes (`PutField` of the same
//!   field, any `ArrStore` for array loads, any `Call`), mirroring the
//!   legality rules GVN's correct path uses. A pass that CSEs a load
//!   *across* an invalidation produces a diverging value node wherever
//!   the stale value is observed (the `HsGvnArrayAlias` shape), but a
//!   dropped *never-observed* read also drops its potential exception.
//! * Per-iteration block summaries cannot see cross-iteration facts; a
//!   pass exploiting (or violating) loop-carried reasoning beyond
//!   single-definition purity is outside the relation.
//! * Global value resolution is path-insensitive: a register with two
//!   definitions is opaque at block entry even when one definition
//!   dominates.
//!
//! Like the static verifier, validation is observation-only: defects are
//! reported through `ExecutionResult::tv`, never altering compilation.

use std::collections::HashMap;

use cse_bytecode::BProgram;

use super::ir::{BinKind, Block, BlockId, IrFunc, Op, Reg, Term};

pub use crate::config::TvMode;

/// Pass label for the [`TvMode::Boundary`] whole-pipeline check
/// (post-`build()` IR against the final pipeline output).
pub const PASS_PIPELINE: &str = "pipeline";

/// Cap on reported defects per validation point, so one catastrophically
/// miscompiled function cannot flood incident logs.
const MAX_ERRORS: usize = 8;

/// Rendering depth bound for counterexample value terms.
const MAX_RENDER_DEPTH: usize = 5;

/// The refinement obligation a pass declares (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvContract {
    /// Pure computation may change; effects, anchor writes, and guards
    /// must be preserved exactly.
    EffectPreserving,
    /// As above, plus constant control flow may collapse and guards may
    /// strengthen (never weaken).
    GuardIntroducing,
    /// Register renaming only: every instruction and terminator identical
    /// under a consistent bijection that fixes anchors.
    LayoutOnly,
}

impl std::fmt::Display for TvContract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TvContract::EffectPreserving => write!(f, "effect-preserving"),
            TvContract::GuardIntroducing => write!(f, "guard-introducing"),
            TvContract::LayoutOnly => write!(f, "layout-only"),
        }
    }
}

/// A refinement violation, attributed to the pass whose output diverged
/// from its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvError {
    /// `Class.method` of the compiled function.
    pub method: String,
    /// The pass whose (before, after) pair failed the simulation relation
    /// ([`PASS_PIPELINE`] for the boundary-mode whole-pipeline check).
    pub pass: &'static str,
    /// Block (in `before` coordinates) containing the divergence.
    pub block: BlockId,
    /// The smallest diverging effect or value node, rendered.
    pub detail: String,
    /// Full pre-pass IR (`IrFunc::pretty`).
    pub before_ir: String,
    /// Full post-pass IR (`IrFunc::pretty`).
    pub after_ir: String,
}

impl std::fmt::Display for TvError {
    /// First line `method: after pass: bN: detail` (the line triage
    /// signatures parse — same `": after "` convention as
    /// [`super::verify::IrVerifyError`]), followed by the pre/post IR
    /// dumps.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: after {}: b{}: {}", self.method, self.pass, self.block, self.detail)?;
        writeln!(f, "--- IR before {} ---", self.pass)?;
        write!(f, "{}", self.before_ir)?;
        writeln!(f, "--- IR after {} ---", self.pass)?;
        write!(f, "{}", self.after_ir)
    }
}

// ----- value graph ---------------------------------------------------------

type Vid = u32;

/// One hash-consed node of the shared (before + after) value graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    I(i32),
    L(i64),
    S(u32),
    Null,
    /// A register never assigned in the function (parameter/initial
    /// state): a whole-function symbolic input.
    Entry(Reg),
    /// The opaque value of a multi-definition register at one block's
    /// entry (the bounded loop summary's cut point).
    BlockIn(BlockId, Reg),
    /// A pure expression over other nodes. `aux` packs the operator's
    /// static payload (BinKind/CmpOp/ArrKind/field ids, …).
    Pure {
        tag: &'static str,
        aux: u64,
        args: Vec<Vid>,
    },
    /// An opaque position-keyed value: a fresh memory read (`occ` numbers
    /// cache misses of the same key within a block) or an effect result
    /// (`occ` is the producing event's index in the block trace).
    Opaque {
        tag: &'static str,
        aux: u64,
        args: Vec<Vid>,
        block: BlockId,
        occ: u32,
    },
}

/// The hash-consing interner. Both sides of a check intern into one
/// graph, so semantic equality is `Vid` equality.
#[derive(Default)]
struct Graph {
    nodes: Vec<Node>,
    index: HashMap<Node, Vid>,
}

impl Graph {
    fn intern(&mut self, node: Node) -> Vid {
        if let Some(&v) = self.index.get(&node) {
            return v;
        }
        let v = self.nodes.len() as Vid;
        self.nodes.push(node.clone());
        self.index.insert(node, v);
        v
    }

    fn as_i(&self, v: Vid) -> Option<i32> {
        match self.nodes[v as usize] {
            Node::I(x) => Some(x),
            _ => None,
        }
    }

    fn as_l(&self, v: Vid) -> Option<i64> {
        match self.nodes[v as usize] {
            Node::L(x) => Some(x),
            _ => None,
        }
    }

    /// Interns a pure operation over resolved operands, constant-folding
    /// with exactly the semantics `passes::constfold` uses on its correct
    /// path (so a legal fold on one side meets the unfolded expression on
    /// the other at the same node) and sorting commutative operands the
    /// way GVN's `key_of` does.
    fn pure_value(&mut self, op: &Op, args: &[Vid]) -> Vid {
        match op {
            Op::ConstI(v) => self.intern(Node::I(*v)),
            Op::ConstL(v) => self.intern(Node::L(*v)),
            Op::ConstS(s) => self.intern(Node::S(s.0)),
            Op::ConstNull => self.intern(Node::Null),
            Op::Copy(_) => args[0],
            Op::BinI(kind, ..) => {
                if let (Some(x), Some(y)) = (self.as_i(args[0]), self.as_i(args[1])) {
                    if let Some(v) = fold_bin_i(*kind, x, y) {
                        return self.intern(Node::I(v));
                    }
                }
                let (a, b) = if kind.commutative() && args[0] > args[1] {
                    (args[1], args[0])
                } else {
                    (args[0], args[1])
                };
                self.intern(Node::Pure { tag: "bin.i", aux: *kind as u64, args: vec![a, b] })
            }
            Op::BinL(kind, ..) => {
                let folded = match kind {
                    BinKind::Shl | BinKind::Shr | BinKind::Ushr => {
                        match (self.as_l(args[0]), self.as_i(args[1])) {
                            (Some(x), Some(y)) => fold_binl_shift(*kind, x, y),
                            _ => None,
                        }
                    }
                    _ => match (self.as_l(args[0]), self.as_l(args[1])) {
                        (Some(x), Some(y)) => fold_bin_l(*kind, x, y),
                        _ => None,
                    },
                };
                if let Some(v) = folded {
                    return self.intern(Node::L(v));
                }
                let (a, b) = if kind.commutative() && args[0] > args[1] {
                    (args[1], args[0])
                } else {
                    (args[0], args[1])
                };
                self.intern(Node::Pure { tag: "bin.l", aux: *kind as u64, args: vec![a, b] })
            }
            Op::NegI(_) => match self.as_i(args[0]) {
                Some(x) => self.intern(Node::I(x.wrapping_neg())),
                None => self.intern(Node::Pure { tag: "neg.i", aux: 0, args: args.to_vec() }),
            },
            Op::NegL(_) => match self.as_l(args[0]) {
                Some(x) => self.intern(Node::L(x.wrapping_neg())),
                None => self.intern(Node::Pure { tag: "neg.l", aux: 0, args: args.to_vec() }),
            },
            Op::I2L(_) => match self.as_i(args[0]) {
                Some(x) => self.intern(Node::L(i64::from(x))),
                None => self.intern(Node::Pure { tag: "i2l", aux: 0, args: args.to_vec() }),
            },
            Op::L2I(_) => match self.as_l(args[0]) {
                Some(x) => self.intern(Node::I(x as i32)),
                None => self.intern(Node::Pure { tag: "l2i", aux: 0, args: args.to_vec() }),
            },
            Op::I2B(_) => match self.as_i(args[0]) {
                Some(x) => self.intern(Node::I(i32::from(x as i8))),
                None => self.intern(Node::Pure { tag: "i2b", aux: 0, args: args.to_vec() }),
            },
            Op::I2S(_) => self.intern(Node::Pure { tag: "i2s", aux: 0, args: args.to_vec() }),
            Op::L2S(_) => self.intern(Node::Pure { tag: "l2s", aux: 0, args: args.to_vec() }),
            Op::Bool2S(_) => self.intern(Node::Pure { tag: "bool2s", aux: 0, args: args.to_vec() }),
            Op::Concat(..) => {
                self.intern(Node::Pure { tag: "concat", aux: 0, args: args.to_vec() })
            }
            Op::CmpI(c, ..) => match (self.as_i(args[0]), self.as_i(args[1])) {
                (Some(x), Some(y)) => self.intern(Node::I(i32::from(c.eval(x, y)))),
                _ => self.intern(Node::Pure { tag: "cmp.i", aux: *c as u64, args: args.to_vec() }),
            },
            Op::CmpL(c, ..) => match (self.as_l(args[0]), self.as_l(args[1])) {
                (Some(x), Some(y)) => self.intern(Node::I(i32::from(c.eval(x, y)))),
                _ => self.intern(Node::Pure { tag: "cmp.l", aux: *c as u64, args: args.to_vec() }),
            },
            Op::RefCmp { eq, .. } => {
                // GVN sorts RefCmp operands (the comparison is symmetric);
                // mirror it so its rewrites meet the original node.
                let (a, b) =
                    if args[0] > args[1] { (args[1], args[0]) } else { (args[0], args[1]) };
                self.intern(Node::Pure { tag: "refcmp", aux: u64::from(*eq), args: vec![a, b] })
            }
            _ => unreachable!("pure_value called on a non-pure op: {op}"),
        }
    }

    /// Renders a node for counterexamples, depth-bounded.
    fn render(&self, v: Vid, depth: usize) -> String {
        if depth >= MAX_RENDER_DEPTH {
            return "…".to_string();
        }
        match &self.nodes[v as usize] {
            Node::I(x) => format!("{x}"),
            Node::L(x) => format!("{x}L"),
            Node::S(s) => format!("str{s}"),
            Node::Null => "null".to_string(),
            Node::Entry(r) => format!("r{r}"),
            Node::BlockIn(b, r) => format!("in(b{b}, r{r})"),
            Node::Pure { tag, aux, args } => {
                let args: Vec<String> = args.iter().map(|&a| self.render(a, depth + 1)).collect();
                format!("{tag}#{aux}({})", args.join(", "))
            }
            Node::Opaque { tag, aux, args, block, occ } => {
                let args: Vec<String> = args.iter().map(|&a| self.render(a, depth + 1)).collect();
                format!("{tag}#{aux}@b{block}.{occ}({})", args.join(", "))
            }
        }
    }
}

/// `constfold`'s correct-path i32 fold (wrapping; `Div`/`Rem` only with a
/// non-zero divisor — the exception must still fire otherwise).
fn fold_bin_i(kind: BinKind, x: i32, y: i32) -> Option<i32> {
    Some(match kind {
        BinKind::Add => x.wrapping_add(y),
        BinKind::Sub => x.wrapping_sub(y),
        BinKind::Mul => x.wrapping_mul(y),
        BinKind::Div if y != 0 => x.wrapping_div(y),
        BinKind::Rem if y != 0 => x.wrapping_rem(y),
        BinKind::Div | BinKind::Rem => return None,
        BinKind::Shl => x.wrapping_shl(y as u32),
        BinKind::Shr => x.wrapping_shr(y as u32),
        BinKind::Ushr => ((x as u32).wrapping_shr(y as u32)) as i32,
        BinKind::And => x & y,
        BinKind::Or => x | y,
        BinKind::Xor => x ^ y,
    })
}

/// `constfold`'s correct-path i64 fold for non-shift operators.
fn fold_bin_l(kind: BinKind, x: i64, y: i64) -> Option<i64> {
    Some(match kind {
        BinKind::Add => x.wrapping_add(y),
        BinKind::Sub => x.wrapping_sub(y),
        BinKind::Mul => x.wrapping_mul(y),
        BinKind::Div if y != 0 => x.wrapping_div(y),
        BinKind::Rem if y != 0 => x.wrapping_rem(y),
        BinKind::And => x & y,
        BinKind::Or => x | y,
        BinKind::Xor => x ^ y,
        _ => return None,
    })
}

/// Long shifts take an i32 shift amount (matching `constfold`).
fn fold_binl_shift(kind: BinKind, x: i64, y: i32) -> Option<i64> {
    Some(match kind {
        BinKind::Shl => x.wrapping_shl(y as u32),
        BinKind::Shr => x.wrapping_shr(y as u32),
        BinKind::Ushr => ((x as u64).wrapping_shr(y as u32)) as i64,
        _ => return None,
    })
}

// ----- per-side evaluation -------------------------------------------------

/// Whole-function definition census of one side.
struct SideEval<'f> {
    func: &'f IrFunc,
    /// Definition count per register.
    defs: Vec<u32>,
    /// The unique definition site, valid when `defs[r] == 1`.
    def_site: Vec<(BlockId, usize)>,
}

impl<'f> SideEval<'f> {
    fn new(func: &'f IrFunc) -> SideEval<'f> {
        let n = func.num_regs as usize;
        let mut defs = vec![0u32; n];
        let mut def_site = vec![(0u32, 0usize); n];
        for (b, block) in func.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Some(dst) = inst.dst {
                    if let Some(slot) = defs.get_mut(dst as usize) {
                        *slot += 1;
                        def_site[dst as usize] = (b as BlockId, i);
                    }
                }
            }
        }
        SideEval { func, defs, def_site }
    }

    /// The whole-function value of `r` when it is globally determined: no
    /// definition (symbolic input) or a unique pure definition whose
    /// operands are themselves globally determined. `None` otherwise.
    fn global(&self, g: &mut Graph, r: Reg, visiting: &mut Vec<Reg>) -> Option<Vid> {
        if visiting.contains(&r) {
            return None;
        }
        match self.defs.get(r as usize) {
            Some(0) => Some(g.intern(Node::Entry(r))),
            Some(1) => {
                let (b, i) = self.def_site[r as usize];
                let op = &self.func.blocks[b as usize].insts[i].op;
                if !op.is_pure() {
                    return None;
                }
                visiting.push(r);
                let resolved: Option<Vec<Vid>> =
                    op.sources().iter().map(|&s| self.global(g, s, visiting)).collect();
                visiting.pop();
                resolved.map(|args| g.pure_value(op, &args))
            }
            _ => None,
        }
    }
}

/// One observable event of a block's effect trace.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EventRec {
    tag: &'static str,
    aux: u64,
    args: Vec<Vid>,
}

/// A block's symbolic summary: the effect trace plus the final register
/// state (for terminator operands).
struct BlockSummary {
    events: Vec<EventRec>,
    regs: HashMap<Reg, Vid>,
}

type ReadKey = (&'static str, u64, Vec<Vid>);

/// Symbolically evaluates one block of one side into the shared graph.
fn eval_block(g: &mut Graph, side: &SideEval<'_>, block_id: BlockId) -> BlockSummary {
    let func = side.func;
    let block = &func.blocks[block_id as usize];
    let mut regs: HashMap<Reg, Vid> = HashMap::new();
    let mut reads: HashMap<ReadKey, Vid> = HashMap::new();
    let mut occ: HashMap<ReadKey, u32> = HashMap::new();
    let mut events: Vec<EventRec> = Vec::new();

    macro_rules! lookup {
        ($r:expr) => {{
            let r: Reg = $r;
            match regs.get(&r) {
                Some(&v) => v,
                None => {
                    let v = side
                        .global(g, r, &mut Vec::new())
                        .unwrap_or_else(|| g.intern(Node::BlockIn(block_id, r)));
                    regs.insert(r, v);
                    v
                }
            }
        }};
    }

    for inst in &block.insts {
        let srcs: Vec<Vid> = inst.op.sources().iter().map(|&r| lookup!(r)).collect();
        // A fresh (cache-missing) read or an effect result is keyed by its
        // position so corresponding occurrences on both sides meet at the
        // same opaque node.
        let fresh_read = |g: &mut Graph,
                          reads: &mut HashMap<ReadKey, Vid>,
                          occ: &mut HashMap<ReadKey, u32>,
                          tag: &'static str,
                          aux: u64,
                          args: Vec<Vid>| {
            let key: ReadKey = (tag, aux, args.clone());
            if let Some(&v) = reads.get(&key) {
                return v;
            }
            let n = occ.entry(key.clone()).or_insert(0);
            let v = g.intern(Node::Opaque { tag, aux, args, block: block_id, occ: *n });
            *n += 1;
            reads.insert(key, v);
            v
        };
        let value: Option<Vid> = match &inst.op {
            // Pure computation: value-graph only.
            op if op.is_pure() => Some(g.pure_value(op, &srcs)),
            // Division/remainder: pure when the divisor is a proven
            // non-zero constant (constfold's legality rule); otherwise a
            // potential-throw point that must stay in the trace.
            Op::BinI(kind, ..) => {
                let nonzero = matches!(g.as_i(srcs[1]), Some(y) if y != 0);
                if !nonzero {
                    events.push(EventRec {
                        tag: "maybe-div0.i",
                        aux: *kind as u64,
                        args: srcs.clone(),
                    });
                }
                Some(g.pure_value(&Op::BinI(*kind, 0, 0), &srcs))
            }
            Op::BinL(kind, ..) => {
                let nonzero = matches!(g.as_l(srcs[1]), Some(y) if y != 0);
                if !nonzero {
                    events.push(EventRec {
                        tag: "maybe-div0.l",
                        aux: *kind as u64,
                        args: srcs.clone(),
                    });
                }
                Some(g.pure_value(&Op::BinL(*kind, 0, 0), &srcs))
            }
            // Memory reads: value nodes with GVN-legality invalidation.
            Op::GetField { field, .. } => Some(fresh_read(
                g,
                &mut reads,
                &mut occ,
                "getfield",
                u64::from(*field),
                srcs.clone(),
            )),
            Op::GetStatic { class, field } => {
                let aux = (u64::from(class.0) << 32) | u64::from(*field);
                Some(fresh_read(g, &mut reads, &mut occ, "getstatic", aux, vec![]))
            }
            Op::ArrLoad { kind, .. } => {
                Some(fresh_read(g, &mut reads, &mut occ, "arrload", *kind as u64, srcs.clone()))
            }
            // Array length is immutable once allocated: cacheable forever.
            Op::ArrLen(_) => Some(fresh_read(g, &mut reads, &mut occ, "arrlen", 0, srcs.clone())),
            // Effects: ordered trace events (results are position-keyed).
            Op::PutStatic { class, field, .. } => {
                let aux = (u64::from(class.0) << 32) | u64::from(*field);
                events.push(EventRec { tag: "putstatic", aux, args: srcs.clone() });
                reads.retain(|k, _| !(k.0 == "getstatic" && k.1 == aux));
                None
            }
            Op::PutField { field, .. } => {
                events.push(EventRec {
                    tag: "putfield",
                    aux: u64::from(*field),
                    args: srcs.clone(),
                });
                let f = u64::from(*field);
                reads.retain(|k, _| !(k.0 == "getfield" && k.1 == f));
                None
            }
            Op::ArrStore { kind, .. } => {
                events.push(EventRec { tag: "arrstore", aux: *kind as u64, args: srcs.clone() });
                reads.retain(|k, _| k.0 != "arrload");
                None
            }
            Op::Call { method, .. } => {
                events.push(EventRec { tag: "call", aux: u64::from(method.0), args: srcs.clone() });
                reads.retain(|k, _| !matches!(k.0, "getfield" | "getstatic" | "arrload"));
                let at = events.len() as u32 - 1;
                Some(g.intern(Node::Opaque {
                    tag: "call-result",
                    aux: u64::from(method.0),
                    args: vec![],
                    block: block_id,
                    occ: at,
                }))
            }
            Op::NewObject(class) => {
                events.push(EventRec { tag: "new", aux: u64::from(class.0), args: vec![] });
                let at = events.len() as u32 - 1;
                Some(g.intern(Node::Opaque {
                    tag: "new-result",
                    aux: u64::from(class.0),
                    args: vec![],
                    block: block_id,
                    occ: at,
                }))
            }
            Op::NewArray { kind, .. } | Op::NewMultiArray { kind, .. } => {
                events.push(EventRec { tag: "newarray", aux: *kind as u64, args: srcs.clone() });
                let at = events.len() as u32 - 1;
                Some(g.intern(Node::Opaque {
                    tag: "newarray-result",
                    aux: *kind as u64,
                    args: srcs.clone(),
                    block: block_id,
                    occ: at,
                }))
            }
            Op::Println { kind, .. } => {
                events.push(EventRec { tag: "println", aux: *kind as u64, args: srcs.clone() });
                None
            }
            Op::Mute => {
                events.push(EventRec { tag: "mute", aux: 0, args: vec![] });
                None
            }
            Op::Unmute => {
                events.push(EventRec { tag: "unmute", aux: 0, args: vec![] });
                None
            }
            Op::ThrowUser(_) => {
                events.push(EventRec { tag: "throw", aux: 0, args: srcs.clone() });
                None
            }
            Op::Rethrow(_) => {
                events.push(EventRec { tag: "rethrow", aux: 0, args: srcs.clone() });
                None
            }
            Op::CorruptHeap { bug } => {
                events.push(EventRec { tag: "corrupt-heap", aux: *bug as u64, args: vec![] });
                reads.clear();
                None
            }
            Op::CrashOnExec { bug } => {
                events.push(EventRec { tag: "crash-on-exec", aux: *bug as u64, args: vec![] });
                None
            }
            Op::BurnFuel { factor } => {
                events.push(EventRec { tag: "burn-fuel", aux: u64::from(*factor), args: vec![] });
                None
            }
            op => unreachable!("unclassified op in translation validator: {op}"),
        };
        if let Some(dst) = inst.dst {
            let v = value.unwrap_or_else(|| {
                let at = events.len() as u32;
                g.intern(Node::Opaque {
                    tag: "effect-result",
                    aux: 0,
                    args: vec![],
                    block: block_id,
                    occ: at,
                })
            });
            // Anchor registers are the deopt/handler-visible frame state:
            // a write to one is itself an ordered observable.
            if func.is_anchor(dst) {
                events.push(EventRec { tag: "anchor-write", aux: u64::from(dst), args: vec![v] });
            }
            regs.insert(dst, v);
        }
    }
    // Resolve terminator operands against the final block state.
    for r in block.term.sources() {
        lookup!(r);
    }
    BlockSummary { events, regs }
}

// ----- the simulation check ------------------------------------------------

/// Running context of one refinement check.
struct Checker<'a> {
    method: String,
    pass: &'static str,
    before: &'a IrFunc,
    after: &'a IrFunc,
    errors: Vec<TvError>,
}

impl Checker<'_> {
    fn error(&mut self, block: BlockId, detail: String) {
        if self.errors.len() >= MAX_ERRORS {
            return;
        }
        self.errors.push(TvError {
            method: self.method.clone(),
            pass: self.pass,
            block,
            detail,
            before_ir: self.before.pretty(),
            after_ir: self.after.pretty(),
        });
    }
}

/// Validates that `after` refines `before` under `pass`'s `contract`.
/// Returns every violation found (capped at [`MAX_ERRORS`]); an empty
/// vector means the pass's output simulates its input.
pub fn check_refinement(
    before: &IrFunc,
    after: &IrFunc,
    pass: &'static str,
    contract: TvContract,
    program: &BProgram,
) -> Vec<TvError> {
    let mut ck = Checker {
        method: program.qualified_name(before.method),
        pass,
        before,
        after,
        errors: Vec::new(),
    };
    // Function metadata is untouchable by every contract: frames and
    // anchors define deopt state, handlers define dispatch, the OSR entry
    // defines where execution resumes.
    if after.frames != before.frames {
        ck.error(0, "inline-frame table changed".to_string());
    }
    if after.handlers != before.handlers {
        ck.error(0, "exception-handler table changed".to_string());
    }
    if after.osr_entry != before.osr_entry {
        ck.error(0, "OSR entry changed".to_string());
    }
    if after.anchor_limit_per_frame != before.anchor_limit_per_frame {
        ck.error(0, "anchor-register table changed".to_string());
    }
    if !ck.errors.is_empty() {
        return ck.errors;
    }
    if contract == TvContract::LayoutOnly {
        check_layout(&mut ck);
        return ck.errors;
    }

    let base_len = before.blocks.len();
    if after.blocks.len() < base_len {
        ck.error(0, format!("blocks removed: {} before, {} after", base_len, after.blocks.len()));
        return ck.errors;
    }
    // Appended blocks (LICM preheaders) must be pure forwarding blocks:
    // hoisted pure computation plus an unconditional jump. Any effect,
    // anchor write, or conditional control there is new behavior.
    for (nb, block) in after.blocks.iter().enumerate().skip(base_len) {
        for inst in &block.insts {
            if !inst.op.is_pure() {
                ck.error(
                    nb as BlockId,
                    format!("new block b{nb} contains an effect: `{}`", inst.op),
                );
            } else if inst.dst.is_some_and(|d| after.is_anchor(d)) {
                ck.error(nb as BlockId, format!("new block b{nb} writes an anchor: `{inst}`"));
            }
        }
        if !matches!(block.term, Term::Jump(_)) {
            ck.error(
                nb as BlockId,
                format!("new block b{nb} has a non-jump terminator: `{}`", block.term),
            );
        }
    }
    if !ck.errors.is_empty() {
        return ck.errors;
    }

    let mut g = Graph::default();
    let bside = SideEval::new(before);
    let aside = SideEval::new(after);
    for b in 0..base_len {
        if ck.errors.len() >= MAX_ERRORS {
            break;
        }
        let bs = eval_block(&mut g, &bside, b as BlockId);
        let as_ = eval_block(&mut g, &aside, b as BlockId);
        compare_traces(&mut ck, &g, b as BlockId, &bs.events, &as_.events);
        compare_terms(&mut ck, &mut g, contract, b as BlockId, &bs, &as_);
    }
    ck.errors
}

fn render_event(g: &Graph, e: &EventRec) -> String {
    let args: Vec<String> = e.args.iter().map(|&a| g.render(a, 1)).collect();
    format!("{}#{}({})", e.tag, e.aux, args.join(", "))
}

/// Effect traces must match event-for-event with equal value arguments:
/// the after side may drop or reorder only pure (non-event) computation.
fn compare_traces(ck: &mut Checker<'_>, g: &Graph, b: BlockId, bs: &[EventRec], as_: &[EventRec]) {
    for (i, (eb, ea)) in bs.iter().zip(as_.iter()).enumerate() {
        if eb != ea {
            ck.error(
                b,
                format!(
                    "effect {i} diverges: before `{}`, after `{}`",
                    render_event(g, eb),
                    render_event(g, ea)
                ),
            );
            return;
        }
    }
    match bs.len().cmp(&as_.len()) {
        std::cmp::Ordering::Greater => {
            let e = &bs[as_.len()];
            ck.error(b, format!("effect {} dropped: `{}`", as_.len(), render_event(g, e)));
        }
        std::cmp::Ordering::Less => {
            let e = &as_[bs.len()];
            ck.error(b, format!("effect {} introduced: `{}`", bs.len(), render_event(g, e)));
        }
        std::cmp::Ordering::Equal => {}
    }
}

/// Follows unconditional jumps through appended (pure-forwarding) blocks
/// so a retargeted edge (e.g. through a LICM preheader) compares against
/// the block it ultimately reaches.
fn resolve_target(after: &IrFunc, base_len: usize, mut t: BlockId) -> Option<BlockId> {
    let mut steps = 0;
    while (t as usize) >= base_len {
        steps += 1;
        if steps > after.blocks.len() {
            return None; // forwarding cycle
        }
        match after.blocks.get(t as usize).map(|b| &b.term) {
            Some(Term::Jump(n)) => t = *n,
            _ => return None,
        }
    }
    Some(t)
}

fn compare_terms(
    ck: &mut Checker<'_>,
    g: &mut Graph,
    contract: TvContract,
    b: BlockId,
    bs: &BlockSummary,
    as_: &BlockSummary,
) {
    let base_len = ck.before.blocks.len();
    let bterm = &ck.before.blocks[b as usize].term;
    let aterm = &ck.after.blocks[b as usize].term;
    let bval = |r: &Reg| bs.regs[r];
    let aval = |r: &Reg| as_.regs[r];
    let resolve = |t: BlockId| resolve_target(ck.after, base_len, t);
    match (bterm, aterm) {
        (Term::Jump(x), Term::Jump(y)) => {
            if resolve(*y) != Some(*x) {
                ck.error(b, format!("jump retargeted: b{x} became b{y}"));
            }
        }
        (
            Term::Branch { cond: bc, if_true: bt, if_false: bf },
            Term::Branch { cond: ac, if_true: at, if_false: af },
        ) => {
            if bval(bc) != aval(ac) {
                ck.error(
                    b,
                    format!(
                        "branch condition diverges: before `{}`, after `{}`",
                        g.render(bval(bc), 0),
                        g.render(aval(ac), 0)
                    ),
                );
            } else if resolve(*at) != Some(*bt) || resolve(*af) != Some(*bf) {
                ck.error(b, format!("branch retargeted: b{bt}/b{bf} became b{at}/b{af}"));
            }
        }
        // Collapsing control flow on a proven constant is semantics-
        // preserving for any contract.
        (Term::Branch { cond, if_true, if_false }, Term::Jump(y)) => match g.as_i(bs.regs[cond]) {
            Some(k) => {
                let want = if k != 0 { *if_true } else { *if_false };
                if resolve(*y) != Some(want) {
                    ck.error(
                        b,
                        format!("folded branch took the wrong side: b{y} instead of b{want}"),
                    );
                }
            }
            None => ck.error(
                b,
                format!("branch on non-constant `{}` folded to a jump", g.render(bs.regs[cond], 0)),
            ),
        },
        (Term::Switch { scrut, cases, default }, Term::Jump(y)) => match g.as_i(bs.regs[scrut]) {
            Some(k) => {
                let want = cases
                    .iter()
                    .find(|(label, _)| *label == k)
                    .map(|(_, t)| *t)
                    .unwrap_or(*default);
                if resolve(*y) != Some(want) {
                    ck.error(
                        b,
                        format!("folded switch took the wrong case: b{y} instead of b{want}"),
                    );
                }
            }
            None => ck.error(
                b,
                format!(
                    "switch on non-constant `{}` folded to a jump",
                    g.render(bs.regs[scrut], 0)
                ),
            ),
        },
        (
            Term::Switch { scrut: bsc, cases: bcases, default: bd },
            Term::Switch { scrut: asc, cases: acases, default: ad },
        ) => {
            if bval(bsc) != aval(asc) {
                ck.error(
                    b,
                    format!(
                        "switch scrutinee diverges: before `{}`, after `{}`",
                        g.render(bval(bsc), 0),
                        g.render(aval(asc), 0)
                    ),
                );
                return;
            }
            let resolved: Option<Vec<(i32, BlockId)>> =
                acases.iter().map(|&(l, t)| resolve(t).map(|t| (l, t))).collect();
            if resolved.as_deref() != Some(bcases.as_slice()) || resolve(*ad) != Some(*bd) {
                ck.error(b, "switch cases retargeted".to_string());
            }
        }
        (Term::Return(x), Term::Return(y)) => match (x, y) {
            (Some(x), Some(y)) if bval(x) != aval(y) => ck.error(
                b,
                format!(
                    "return value diverges: before `{}`, after `{}`",
                    g.render(bval(x), 0),
                    g.render(aval(y), 0)
                ),
            ),
            (Some(_), Some(_)) | (None, None) => {}
            _ => ck.error(b, "return arity changed".to_string()),
        },
        (Term::Trap { bc_pc: bp, reason: br }, Term::Trap { bc_pc: ap, reason: ar }) => {
            if bp != ap || br != ar {
                ck.error(b, format!("deopt guard changed: pc{bp} {br:?} became pc{ap} {ar:?}"));
            }
        }
        (Term::Trap { bc_pc, .. }, _) => {
            ck.error(b, format!("deopt guard at pc{bc_pc} weakened to `{aterm}`"));
        }
        (_, Term::Trap { .. }) if contract == TvContract::GuardIntroducing => {}
        _ => {
            ck.error(b, format!("terminator shape changed: `{bterm}` became `{aterm}`"));
        }
    }
}

// ----- layout-only check ---------------------------------------------------

/// The weaker relation for regalloc/codegen: the after function must be
/// the before function under a consistent register-renaming bijection
/// that maps every anchor to itself.
fn check_layout(ck: &mut Checker<'_>) {
    if ck.after.blocks.len() != ck.before.blocks.len() {
        ck.error(
            0,
            format!(
                "layout pass changed block count: {} became {}",
                ck.before.blocks.len(),
                ck.after.blocks.len()
            ),
        );
        return;
    }
    let mut fwd: HashMap<Reg, Reg> = HashMap::new();
    let mut rev: HashMap<Reg, Reg> = HashMap::new();
    let before_blocks: &[Block] = &ck.before.blocks;
    for b in 0..before_blocks.len() {
        if ck.errors.len() >= MAX_ERRORS {
            return;
        }
        let (bb, ab) = (&ck.before.blocks[b], &ck.after.blocks[b]);
        if bb.insts.len() != ab.insts.len() {
            ck.error(
                b as BlockId,
                format!(
                    "layout pass changed instruction count: {} became {}",
                    bb.insts.len(),
                    ab.insts.len()
                ),
            );
            continue;
        }
        for (bi, ai) in bb.insts.iter().zip(&ab.insts) {
            let mut renamed = bi.clone();
            if let Some(detail) =
                bind_pair(ck.before, &mut fwd, &mut rev, bi.dst, ai.dst).err().or_else(|| {
                    let (bsrc, asrc) = (bi.op.sources(), ai.op.sources());
                    if bsrc.len() != asrc.len() {
                        return Some(format!("`{bi}` became `{ai}`"));
                    }
                    for (rb, ra) in bsrc.iter().zip(&asrc) {
                        if let Err(e) =
                            bind_pair(ck.before, &mut fwd, &mut rev, Some(*rb), Some(*ra))
                        {
                            return Some(e);
                        }
                    }
                    renamed.dst = ai.dst;
                    renamed.op.map_sources(|r| fwd.get(&r).copied().unwrap_or(r));
                    if renamed.op != ai.op || bi.frame != ai.frame || bi.bc_pc != ai.bc_pc {
                        return Some(format!("`{bi}` became `{ai}`"));
                    }
                    None
                })
            {
                ck.error(b as BlockId, format!("instruction changed under layout pass: {detail}"));
            }
        }
        let (bsrc, asrc) = (bb.term.sources(), ab.term.sources());
        let mut term_ok = bsrc.len() == asrc.len();
        if term_ok {
            for (rb, ra) in bsrc.iter().zip(&asrc) {
                if let Err(e) = bind_pair(ck.before, &mut fwd, &mut rev, Some(*rb), Some(*ra)) {
                    ck.error(b as BlockId, format!("terminator changed under layout pass: {e}"));
                    term_ok = false;
                    break;
                }
            }
        }
        if term_ok {
            let mut renamed = bb.term.clone();
            renamed.map_sources(|r| fwd.get(&r).copied().unwrap_or(r));
            if renamed != ab.term {
                ck.error(
                    b as BlockId,
                    format!(
                        "terminator changed under layout pass: `{}` became `{}`",
                        bb.term, ab.term
                    ),
                );
            }
        }
    }
}

/// Extends the renaming with one `(before, after)` register pair,
/// enforcing consistency, injectivity, and anchor fixity.
fn bind_pair(
    before: &IrFunc,
    fwd: &mut HashMap<Reg, Reg>,
    rev: &mut HashMap<Reg, Reg>,
    rb: Option<Reg>,
    ra: Option<Reg>,
) -> Result<(), String> {
    match (rb, ra) {
        (None, None) => Ok(()),
        (Some(rb), Some(ra)) => {
            if before.is_anchor(rb) && ra != rb {
                return Err(format!("anchor r{rb} renamed to r{ra}"));
            }
            if let Some(&prev) = fwd.get(&rb) {
                if prev != ra {
                    return Err(format!("r{rb} renamed inconsistently (r{prev} vs r{ra})"));
                }
            }
            if let Some(&src) = rev.get(&ra) {
                if src != rb {
                    return Err(format!("r{src} and r{rb} both renamed to r{ra}"));
                }
            }
            fwd.insert(rb, ra);
            rev.insert(ra, rb);
            Ok(())
        }
        _ => Err("destination added or removed".to_string()),
    }
}
