//! The compiled-code evaluator ("native" execution of JIT output).
//!
//! Executes optimized IR against the live VM: registers live in
//! `Vm::reg_frames` so the garbage collector can see them as roots.
//! Exceptions dispatch through the translated handler table (walking the
//! inline-frame chain); uncommon traps rebuild the interpreter's locals
//! from the anchor registers and hand control back to the VM for
//! de-optimization.

use cse_bytecode::{CmpOp, ExcKind};

use super::ir::*;
use crate::events::DeoptReason;
use crate::exec::{CrashInfo, CrashKind, CrashPhase};
use crate::faults::BugId;
use crate::value::Value;
use crate::{Exit, Vm};

/// How a compiled-code execution ended (normal exits only; exceptions and
/// crashes propagate as the VM's internal exit type).
#[derive(Debug)]
pub enum IrOutcome {
    Return(Option<Value>),
    /// An uncommon trap fired: de-optimize and resume interpretation at
    /// `bc_pc` with the given locals.
    Deopt {
        bc_pc: u32,
        locals: Vec<Value>,
        reason: DeoptReason,
    },
    /// Profiled lower-tier code observed its back-edge counters crossing
    /// the next tier's threshold (C1-profiling-feeds-C2): hand control
    /// back at the loop header so the VM can re-enter through a hotter
    /// compilation. Not a de-optimization — no cool-down.
    TierUp {
        bc_pc: u32,
        locals: Vec<Value>,
    },
}

/// Runs a compiled function. `entry_locals` seeds the outermost frame's
/// anchor registers (method arguments, or the full interpreter locals for
/// OSR entries).
pub(crate) fn run_ir(
    vm: &mut Vm<'_>,
    func: &IrFunc,
    entry_locals: Vec<Value>,
) -> Result<IrOutcome, Exit> {
    debug_assert_eq!(func.frames[0].local_base, 0, "outer frame locals start at register 0");
    let mut regs = vec![Value::I(0); func.num_regs as usize];
    let num_locals0 = func.frames[0].num_locals as usize;
    for (i, v) in entry_locals.into_iter().take(num_locals0).enumerate() {
        regs[i] = v;
    }
    // Injected OSR local-transfer bug (ART): with two or more long locals,
    // the first long local arrives corrupted.
    if func.osr_entry.is_some() && vm.fault_fired(BugId::ArtOsrLongTransfer) {
        let longs: Vec<usize> =
            (0..num_locals0).filter(|&i| matches!(regs[i], Value::L(_))).collect();
        if longs.len() >= 2 {
            if let Value::L(v) = &mut regs[longs[0]] {
                *v ^= 1;
            }
        }
    }
    vm.depth += 1;
    vm.reg_frames.push(regs);
    let frame_idx = vm.reg_frames.len() - 1;
    let result = exec_loop(vm, func, frame_idx);
    vm.reg_frames.pop();
    vm.depth -= 1;
    result
}

/// Locates the handler for an exception raised at (`frame`, `bc_pc`),
/// walking outward through inline frames.
fn find_handler(func: &IrFunc, mut frame: u16, mut bc_pc: u32) -> Option<usize> {
    loop {
        if let Some(idx) = func
            .handlers
            .iter()
            .position(|h| h.frame == frame && bc_pc >= h.start_bc && bc_pc < h.end_bc)
        {
            return Some(idx);
        }
        match func.frames[frame as usize].parent {
            Some((parent, call_pc)) => {
                frame = parent;
                bc_pc = call_pc;
            }
            None => return None,
        }
    }
}

thread_local! {
    /// Last-executed-instruction ring buffer, kept when `CSE_TRACE_JIT` is
    /// set; the panic path of debugging tools prints it.
    pub static TRACE_RING: std::cell::RefCell<std::collections::VecDeque<String>> =
        std::cell::RefCell::new(std::collections::VecDeque::with_capacity(64));
}

fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CSE_TRACE_JIT").is_some())
}

#[allow(clippy::too_many_lines)]
fn exec_loop(vm: &mut Vm<'_>, func: &IrFunc, frame_idx: usize) -> Result<IrOutcome, Exit> {
    // Interned literal pool (shared with the interpreter): `ConstS` below
    // is a refcount bump, never a per-execution allocation.
    let decoded = vm.decoded();
    let mut block: BlockId = 0;
    let mut inst_idx: usize = 0;
    // Lower-tier compiled code keeps profiling: back-jumps feed the
    // bytecode back-edge counters so hot loops can promote to the next
    // tier (the C1-profiled-code model). Top-tier code does not profile.
    let top = vm.config.tiers.len() as u8;
    let profiled = func.tier.0 < top;
    let mut back_jumps: u64 = 0;
    // Tier-up may only hand control back when execution is *at* the OSR
    // header (locals then exactly describe the interpreter state there);
    // the header's block is what the prologue jumps to.
    let osr_header_block: Option<BlockId> = match (&func.osr_entry, &func.blocks[0].term) {
        (Some(_), Term::Jump(b)) => Some(*b),
        _ => None,
    };
    // Which bytecode back-edge counter the profiled bumps feed: the OSR
    // header's own counter, or the method's first loop for entry bodies.
    let bump_idx: Option<usize> = if profiled {
        let headers = &vm.program.method(func.method).loop_headers;
        match func.osr_entry {
            Some(h) => headers.binary_search(&h).ok(),
            None => (!headers.is_empty()).then_some(0),
        }
    } else {
        None
    };
    macro_rules! reg {
        ($r:expr) => {
            vm.reg_frames[frame_idx][$r as usize]
        };
    }
    // Hoisted out of the dispatch loop: one `OnceLock` read per
    // activation instead of one per executed instruction.
    let tracing = trace_enabled();
    'dispatch: loop {
        let b = &func.blocks[block as usize];
        while inst_idx < b.insts.len() {
            let inst = &b.insts[inst_idx];
            if tracing {
                TRACE_RING.with(|ring| {
                    let mut ring = ring.borrow_mut();
                    if ring.len() >= 60 {
                        ring.pop_front();
                    }
                    let srcs: Vec<String> = inst
                        .op
                        .sources()
                        .iter()
                        .map(|r| format!("r{r}={:?}", vm.reg_frames[frame_idx][*r as usize]))
                        .collect();
                    ring.push_back(format!(
                        "m{} {:?} osr={:?} b{} i{} dst={:?} {:?} [{}]",
                        func.method.0,
                        func.tier,
                        func.osr_entry,
                        block,
                        inst_idx,
                        inst.dst,
                        inst.op,
                        srcs.join(", ")
                    ));
                });
            }
            vm.burn(1)?;
            vm.stats.jit_ops += 1;
            // Exception plumbing: ops that raise go through `raise` below.
            let mut exception: Option<(ExcKind, i32)> = None;
            let mut result: Option<Value> = None;
            match &inst.op {
                Op::ConstI(v) => result = Some(Value::I(*v)),
                Op::ConstL(v) => result = Some(Value::L(*v)),
                Op::ConstS(s) => {
                    result = Some(Value::S(decoded.string(*s).clone()));
                }
                Op::ConstNull => result = Some(Value::Null),
                Op::Copy(r) => result = Some(reg!(*r).clone()),
                Op::BinI(kind, a, b2) => {
                    let x = reg!(*a).as_i();
                    let y = reg!(*b2).as_i();
                    match eval_bin_i(*kind, x, y) {
                        Ok(v) => result = Some(Value::I(v)),
                        Err(e) => exception = Some(e),
                    }
                }
                Op::BinL(kind, a, b2) => {
                    let x = reg!(*a).as_l();
                    match kind {
                        BinKind::Shl | BinKind::Shr | BinKind::Ushr => {
                            let y = reg!(*b2).as_i();
                            let v = match kind {
                                BinKind::Shl => x.wrapping_shl(y as u32),
                                BinKind::Shr => x.wrapping_shr(y as u32),
                                _ => ((x as u64).wrapping_shr(y as u32)) as i64,
                            };
                            result = Some(Value::L(v));
                        }
                        _ => {
                            let y = reg!(*b2).as_l();
                            match eval_bin_l(*kind, x, y) {
                                Ok(v) => result = Some(Value::L(v)),
                                Err(e) => exception = Some(e),
                            }
                        }
                    }
                }
                Op::NegI(r) => result = Some(Value::I(reg!(*r).as_i().wrapping_neg())),
                Op::NegL(r) => result = Some(Value::L(reg!(*r).as_l().wrapping_neg())),
                Op::I2L(r) => result = Some(Value::L(i64::from(reg!(*r).as_i()))),
                Op::L2I(r) => result = Some(Value::I(reg!(*r).as_l() as i32)),
                Op::I2B(r) => result = Some(Value::I(i32::from(reg!(*r).as_i() as i8))),
                Op::I2S(r) => result = Some(Value::str(reg!(*r).as_i().to_string())),
                Op::L2S(r) => result = Some(Value::str(reg!(*r).as_l().to_string())),
                Op::Bool2S(r) => {
                    result = Some(Value::str(if reg!(*r).as_bool() { "true" } else { "false" }));
                }
                Op::Concat(a, b2) => {
                    let va = reg!(*a).clone();
                    let vb = reg!(*b2).clone();
                    result = Some(vm.concat(&va, &vb));
                }
                Op::CmpI(op, a, b2) => {
                    result = Some(Value::I(i32::from(op.eval(reg!(*a).as_i(), reg!(*b2).as_i()))));
                }
                Op::CmpL(op, a, b2) => {
                    result = Some(Value::I(i32::from(op.eval(reg!(*a).as_l(), reg!(*b2).as_l()))));
                }
                Op::RefCmp { eq, a, b: b2 } => {
                    let same = reg!(*a).ref_eq(&reg!(*b2));
                    result = Some(Value::I(i32::from(same == *eq)));
                }
                Op::GetStatic { class, field } => {
                    result = Some(vm.statics[class.0 as usize][*field as usize].clone());
                }
                Op::PutStatic { class, field, val } => {
                    let v = reg!(*val).clone();
                    vm.statics[class.0 as usize][*field as usize] = v;
                }
                Op::GetField { obj, field } => {
                    let o = reg!(*obj).clone();
                    match vm.field_get(&o, *field) {
                        Ok(v) => result = Some(v),
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::PutField { obj, field, val } => {
                    let o = reg!(*obj).clone();
                    let v = reg!(*val).clone();
                    match vm.field_put(&o, *field, v) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::NewObject(class) => match vm.alloc_object(*class) {
                    Ok(v) => result = Some(v),
                    Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                    Err(e) => return finish(vm, frame_idx, Err(e)),
                },
                Op::NewArray { kind, len } => {
                    let n = reg!(*len).as_i();
                    match vm.alloc_array(*kind, n) {
                        Ok(v) => result = Some(v),
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::NewMultiArray { kind, dims } => {
                    let lens: Vec<i32> = dims.iter().map(|r| reg!(*r).as_i()).collect();
                    match vm.alloc_multi(*kind, &lens) {
                        Ok(v) => result = Some(v),
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::ArrLoad { arr, idx, .. } => {
                    let a = reg!(*arr).clone();
                    let i = reg!(*idx).as_i();
                    match vm.arr_load(&a, i) {
                        Ok(v) => result = Some(v),
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::ArrStore { arr, idx, val, .. } => {
                    let a = reg!(*arr).clone();
                    let i = reg!(*idx).as_i();
                    let v = reg!(*val).clone();
                    match vm.arr_store(&a, i, v) {
                        Ok(()) => {}
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::ArrLen(r) => {
                    let a = reg!(*r).clone();
                    match vm.arr_len(&a) {
                        Ok(n) => result = Some(Value::I(n)),
                        Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                        Err(e) => return finish(vm, frame_idx, Err(e)),
                    }
                }
                Op::Call { method, args } => {
                    let callee = vm.program.method(*method);
                    let argv: Vec<Value> = args.iter().map(|r| reg!(*r).clone()).collect();
                    if !callee.is_static && argv[0].is_null() {
                        exception = Some((ExcKind::NullPointer, 0));
                    } else {
                        match vm.call_method(*method, argv) {
                            Ok(v) => result = v,
                            Err(Exit::Exception { kind, code }) => exception = Some((kind, code)),
                            Err(e) => return finish(vm, frame_idx, Err(e)),
                        }
                    }
                }
                Op::Println { kind, val } => {
                    let v = reg!(*val).clone();
                    vm.print_value(*kind, &v);
                }
                Op::Mute => vm.mute_depth += 1,
                Op::Unmute => vm.mute_depth = vm.mute_depth.saturating_sub(1),
                Op::ThrowUser(r) => exception = Some((ExcKind::User, reg!(*r).as_i())),
                Op::Rethrow(r) => {
                    let (kind, code) = ExcKind::unpack(reg!(*r).as_l());
                    exception = Some((kind, code));
                }
                Op::CorruptHeap { bug } => {
                    vm.heap.corrupt_for_fault_injection();
                    vm.pending_gc_bug = Some(*bug);
                }
                Op::CrashOnExec { bug } => {
                    return finish(
                        vm,
                        frame_idx,
                        Err(Exit::Crash(CrashInfo {
                            bug: *bug,
                            component: bug.component(),
                            kind: CrashKind::Sigsegv,
                            phase: CrashPhase::Executing,
                            detail: format!(
                                "compiled code of {} dereferenced a wild pointer",
                                vm.program.qualified_name(func.method)
                            ),
                        })),
                    );
                }
                Op::BurnFuel { factor } => {
                    vm.stats.jit_ops += u64::from(*factor);
                    if let Err(e) = vm.burn(u64::from(*factor)) {
                        return finish(vm, frame_idx, Err(e));
                    }
                }
            }
            if let Some((kind, code)) = exception {
                match find_handler(func, inst.frame, inst.bc_pc) {
                    Some(h) => {
                        let handler = &func.handlers[h];
                        if let Some(save) = handler.save_reg {
                            reg!(save) = Value::L(kind.pack(code));
                        }
                        block = handler.target;
                        inst_idx = 0;
                        continue 'dispatch;
                    }
                    None => return finish(vm, frame_idx, Err(Exit::Exception { kind, code })),
                }
            }
            if let Some(v) = result {
                if let Some(dst) = inst.dst {
                    reg!(dst) = v;
                }
            }
            inst_idx += 1;
        }
        // Terminator back-jump profiling (blocks are created in bytecode
        // order, so a jump to a lower id approximates a loop back-edge).
        if profiled {
            let target = match &func.blocks[block as usize].term {
                Term::Jump(t) => Some(*t),
                Term::Branch { if_true, .. } => Some(*if_true),
                _ => None,
            };
            if let Some(t) = target {
                if t <= block {
                    back_jumps += 1;
                    let prof = &mut vm.profiles[func.method.0 as usize];
                    if let Some(idx) = bump_idx {
                        prof.backedges[idx] += 1;
                    }
                    // Periodically check for tier promotion — but only on
                    // the back-jump that re-enters the OSR header itself,
                    // where the anchor registers exactly describe the
                    // interpreter state (a jump back into an *inner* loop
                    // must keep running: bailing there would skip the rest
                    // of the current iteration).
                    if Some(t) == osr_header_block && back_jumps & 7 == 0 && !prof.compile_banned {
                        let next = vm.config.tiers[func.tier.0 as usize].backedge;
                        if prof.backedges.iter().any(|&c| c >= next) {
                            let n = func.frames[0].num_locals as usize;
                            let locals = vm.reg_frames[frame_idx][..n].to_vec();
                            return Ok(IrOutcome::TierUp {
                                bc_pc: func.osr_entry.expect("checked above"),
                                locals,
                            });
                        }
                    }
                }
            }
        }
        if trace_enabled() {
            TRACE_RING.with(|ring| {
                let mut ring = ring.borrow_mut();
                if ring.len() >= 60 {
                    ring.pop_front();
                }
                ring.push_back(format!(
                    "m{} {:?} osr={:?} b{} TERM {:?}",
                    func.method.0,
                    func.tier,
                    func.osr_entry,
                    block,
                    func.blocks[block as usize].term
                ));
            });
        }
        match &func.blocks[block as usize].term {
            Term::Jump(b2) => {
                block = *b2;
                inst_idx = 0;
            }
            Term::Branch { cond, if_true, if_false } => {
                let c = reg!(*cond).as_bool();
                block = if c { *if_true } else { *if_false };
                inst_idx = 0;
            }
            Term::Switch { scrut, cases, default } => {
                let v = reg!(*scrut).as_i();
                block = cases
                    .iter()
                    .find(|(label, _)| *label == v)
                    .map(|(_, b2)| *b2)
                    .unwrap_or(*default);
                inst_idx = 0;
            }
            Term::Return(value) => {
                let v = value.map(|r| reg!(r).clone());
                return finish(vm, frame_idx, Ok(IrOutcome::Return(v)));
            }
            Term::Trap { bc_pc, reason } => {
                let n = func.frames[0].num_locals as usize;
                let mut locals: Vec<Value> = vm.reg_frames[frame_idx][..n].to_vec();
                // Injected de-optimization bug (OpenJ9): the rebuilt frame
                // restores the first non-argument local stale (arguments
                // live in registers the deopt stub handles correctly).
                if vm.fault_fired(BugId::J9DeoptStaleLocal) && n >= 8 {
                    let first_var = vm.program.method(func.method).arg_slots();
                    if let Some(v) = locals.get_mut(first_var) {
                        match v {
                            Value::I(v) => *v ^= 1,
                            Value::L(v) => *v ^= 1,
                            _ => {}
                        }
                    }
                }
                return finish(
                    vm,
                    frame_idx,
                    Ok(IrOutcome::Deopt { bc_pc: *bc_pc, locals, reason: *reason }),
                );
            }
        }
    }
}

/// Ensures balanced reg-frame bookkeeping on every exit path.
fn finish(
    _vm: &mut Vm<'_>,
    _frame_idx: usize,
    result: Result<IrOutcome, Exit>,
) -> Result<IrOutcome, Exit> {
    // The reg frame is popped by `run_ir`; this helper exists to funnel all
    // exits through one point (and to keep the loop body tidy).
    result
}

fn eval_bin_i(kind: BinKind, a: i32, b: i32) -> Result<i32, (ExcKind, i32)> {
    Ok(match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => {
            if b == 0 {
                return Err((ExcKind::Arithmetic, 0));
            }
            a.wrapping_div(b)
        }
        BinKind::Rem => {
            if b == 0 {
                return Err((ExcKind::Arithmetic, 0));
            }
            a.wrapping_rem(b)
        }
        BinKind::Shl => a.wrapping_shl(b as u32),
        BinKind::Shr => a.wrapping_shr(b as u32),
        BinKind::Ushr => ((a as u32).wrapping_shr(b as u32)) as i32,
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
    })
}

fn eval_bin_l(kind: BinKind, a: i64, b: i64) -> Result<i64, (ExcKind, i32)> {
    Ok(match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => {
            if b == 0 {
                return Err((ExcKind::Arithmetic, 0));
            }
            a.wrapping_div(b)
        }
        BinKind::Rem => {
            if b == 0 {
                return Err((ExcKind::Arithmetic, 0));
            }
            a.wrapping_rem(b)
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Shl | BinKind::Shr | BinKind::Ushr => unreachable!("long shifts take int rhs"),
    })
}

/// `CmpOp::eval` is generic; re-exported here for evaluator readability.
trait CmpEval {
    fn eval<T: PartialOrd>(&self, a: T, b: T) -> bool;
}

impl CmpEval for CmpOp {
    fn eval<T: PartialOrd>(&self, a: T, b: T) -> bool {
        CmpOp::eval(*self, a, b)
    }
}
