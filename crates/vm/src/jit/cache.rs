//! Cross-run JIT code cache.
//!
//! A [`Vm`](crate::Vm) already memoizes compiled code *within* one run,
//! but campaign workloads execute the **same program many times**:
//! forced-plan compilation-space enumeration runs `2^n` plans over one
//! program, validation re-runs a mutant for attribution with each bug
//! ablated, and recompile-heavy plans rebuild method bodies after every
//! de-optimization. A `CodeCache` lets all of those runs share compiled
//! IR instead of rebuilding the CFG and re-running the pass pipeline per
//! execution.
//!
//! # Soundness
//!
//! A cache hit must be indistinguishable from a fresh compilation.
//! `jit::compile` is a pure function of:
//!
//! * the program (a cache is pinned to one [`BProgram`]),
//! * `(method, tier, osr)` — what is being compiled,
//! * `speculate` and `has_osr_code` — compile-mode flags,
//! * the root method's [`MethodProfile`](crate::profile::MethodProfile)
//!   (speculation inputs, warmth predicates, deopt history), captured by
//!   [`MethodProfile::compile_fingerprint`](crate::profile::MethodProfile::compile_fingerprint),
//! * the environment: VM kind, inline budget, and the active fault set
//!   (buggy passes compile *differently* when their bug is seeded),
//!   captured by [`CodeCache::env_fingerprint`].
//!
//! Every one of those inputs is part of [`CacheKey`], so a hit can only
//! occur when a fresh compilation would have produced byte-identical IR
//! (including injected compile-time crashes, which are cached as `Err`).
//! The VM still records the `Compiled` trace event and bumps
//! `stats.compilations` on a hit — the cache saves the *work*, never the
//! observable semantics.
//!
//! The cache is deliberately single-threaded (`Rc` + `RefCell`): parallel
//! campaign workers each own a cache per program on their own thread,
//! which keeps the hot path free of locks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use cse_bytecode::{BProgram, DecodedProgram, MethodId};

use crate::config::{Tier, VmConfig};
use crate::exec::CrashInfo;
use crate::jit::ir::IrFunc;
use crate::profile::Fnv;

/// Everything that distinguishes one compilation from another for a
/// fixed program (see the module docs for the soundness argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub method: MethodId,
    pub tier: Tier,
    pub osr: Option<u32>,
    pub speculate: bool,
    pub has_osr_code: bool,
    /// `MethodProfile::compile_fingerprint` of the root method at compile
    /// time.
    pub profile_fp: u64,
    /// `CodeCache::env_fingerprint` of the executing configuration.
    pub env_fp: u64,
}

/// A shared cache of compiled IR for **one** program.
///
/// Create with [`CodeCache::for_program`], then run any number of VMs
/// against the same program via [`Vm::run_program_cached`](crate::Vm::run_program_cached)
/// (or [`supervised_run_cached`](crate::supervise::supervised_run_cached)).
/// Different configurations (fault sets, plans, thresholds) may share one
/// cache: configuration facets that affect compilation are part of the
/// key; facets that only affect execution (fuel, plans, GC interval) are
/// deliberately not.
pub struct CodeCache {
    /// Structural fingerprint of the program this cache is pinned to;
    /// checked (debug builds) whenever a VM attaches.
    program_fp: u64,
    entries: RefCell<HashMap<CacheKey, Result<Rc<IrFunc>, CrashInfo>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// The program's pre-decoded instruction form (see
    /// [`cse_bytecode::decoded`]), built on first attach so the 2^n VM
    /// runs of a plan-space sweep decode the program exactly once.
    decoded: RefCell<Option<Rc<DecodedProgram>>>,
}

impl CodeCache {
    /// An empty cache pinned to `program`.
    pub fn for_program(program: &BProgram) -> Rc<CodeCache> {
        Rc::new(CodeCache {
            program_fp: program_fingerprint(program),
            entries: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            decoded: RefCell::new(None),
        })
    }

    /// Whether this cache was built for `program`.
    pub fn is_for(&self, program: &BProgram) -> bool {
        self.program_fp == program_fingerprint(program)
    }

    /// Fingerprint of the compilation-relevant configuration facets.
    pub(crate) fn env_fingerprint(config: &VmConfig) -> u64 {
        let mut fp = Fnv::new();
        fp.u64(config.kind as u64);
        fp.u64(config.inline_limit as u64);
        fp.u64(config.faults.fingerprint());
        fp.finish()
    }

    /// The shared decoded form of `program`, decoding it on first call.
    pub(crate) fn decoded(&self, program: &BProgram) -> Rc<DecodedProgram> {
        debug_assert!(self.is_for(program), "decode requested for a different program");
        self.decoded
            .borrow_mut()
            .get_or_insert_with(|| Rc::new(DecodedProgram::decode(program)))
            .clone()
    }

    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Result<Rc<IrFunc>, CrashInfo>> {
        let entry = self.entries.borrow().get(key).cloned();
        match &entry {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => self.misses.set(self.misses.get() + 1),
        }
        entry
    }

    pub(crate) fn insert(&self, key: CacheKey, value: Result<Rc<IrFunc>, CrashInfo>) {
        self.entries.borrow_mut().insert(key, value);
    }

    /// Cached compilations (successful and crashing).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// `(hits, misses)` over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

/// Cheap structural fingerprint of a program — enough to catch a cache
/// attached to the wrong program, without hashing every instruction.
fn program_fingerprint(program: &BProgram) -> u64 {
    let mut fp = Fnv::new();
    fp.u64(program.classes.len() as u64);
    fp.u64(program.methods.len() as u64);
    fp.u64(program.strings.len() as u64);
    fp.u64(program.entry.0 as u64);
    fp.u64(program.clinit.map(|m| m.0 as u64 + 1).unwrap_or(0));
    for method in &program.methods {
        fp.u64(method.code.len() as u64);
        fp.u64(method.num_locals as u64);
        fp.u64(method.handlers.len() as u64);
        fp.u64(method.loop_headers.len() as u64);
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Vm, VmConfig, VmKind};

    fn compile(source: &str) -> BProgram {
        let program = cse_lang::parse_and_check(source).unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    const HOT: &str = r#"
    class T {
        static int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += i; }
            return acc;
        }
        static void main() {
            int total = 0;
            for (int i = 0; i < 3000; i++) { total = f(100); }
            println(total);
        }
    }
    "#;

    #[test]
    fn cached_runs_are_observably_identical() {
        let program = compile(HOT);
        let config = VmConfig::for_kind(VmKind::HotSpotLike);
        let plain = Vm::run_program(&program, config.clone());
        let cache = CodeCache::for_program(&program);
        let first = Vm::run_program_cached(&program, config.clone(), &cache);
        let second = Vm::run_program_cached(&program, config, &cache);
        assert_eq!(plain.observable(), first.observable());
        assert_eq!(plain.observable(), second.observable());
        assert_eq!(plain.output, second.output);
        assert_eq!(plain.events, first.events);
        assert_eq!(plain.events, second.events);
        assert_eq!(plain.stats.compilations, second.stats.compilations);
    }

    #[test]
    fn second_run_hits_the_cache() {
        let program = compile(HOT);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let cache = CodeCache::for_program(&program);
        let first = Vm::run_program_cached(&program, config.clone(), &cache);
        assert!(first.stats.compilations > 0, "calibration: HOT must trigger the JIT");
        assert_eq!(first.stats.code_cache_hits, 0, "an empty cache cannot hit");
        let (_, misses_after_first) = cache.stats();
        assert!(misses_after_first > 0);
        let second = Vm::run_program_cached(&program, config, &cache);
        assert_eq!(
            second.stats.code_cache_hits,
            second.stats.compilations + second.stats.osr_compilations,
            "a deterministic re-run must be served entirely from the cache"
        );
        let (hits, _) = cache.stats();
        assert!(hits >= second.stats.code_cache_hits as u64);
    }

    #[test]
    fn different_fault_sets_do_not_share_code() {
        use crate::faults::{BugId, FaultInjector};
        let program = compile(HOT);
        let cache = CodeCache::for_program(&program);
        let correct = VmConfig::correct(VmKind::HotSpotLike);
        let buggy = correct.clone().with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));
        assert_ne!(CodeCache::env_fingerprint(&correct), CodeCache::env_fingerprint(&buggy));
        let a = Vm::run_program_cached(&program, correct, &cache);
        let b = Vm::run_program_cached(&program, buggy, &cache);
        // The second config must not be served the first config's code.
        assert_eq!(b.stats.code_cache_hits, 0);
        assert!(a.outcome.is_completed() && b.outcome.is_completed());
    }

    #[test]
    fn cache_is_pinned_to_its_program() {
        let program = compile(HOT);
        let other = compile("class T { static void main() { println(1); } }");
        let cache = CodeCache::for_program(&program);
        assert!(cache.is_for(&program));
        assert!(!cache.is_for(&other));
    }
}
