//! Campaign-scoped, content-addressed artifact cache.
//!
//! A [`Vm`](crate::Vm) already memoizes compiled code *within* one run,
//! and PR 2's per-program code cache shared it *across runs of one
//! program* (2^n forced plans, attribution reruns). But campaign
//! workloads execute **families of near-identical programs**: every JoNM
//! mutant differs from its seed in exactly one method, so a per-program
//! cache re-compiles and re-decodes thousands of byte-identical methods.
//! [`SharedArtifactCache`] is the program-*agnostic* replacement: one
//! cache per campaign worker, keyed by the content digests of
//! [`cse_bytecode::digest`] so any two programs share artifacts exactly
//! when a fresh compilation could not tell them apart.
//!
//! It caches three artifact kinds:
//!
//! * **Compiled IR** (and injected compile-time crashes), keyed by
//!   [`ArtifactKey`]: the root method's *compilation-unit digest* (its
//!   static call closure to [`cse_bytecode::digest::INLINE_CLOSURE_DEPTH`]
//!   — everything the inliner can read) plus the PR 2 coordinates
//!   `(tier, osr, speculate, has_osr_code, profile_fp, env_fp)`.
//! * **Decoded methods** ([`DecodedMethod`]), keyed by the method digest.
//! * **Whole decoded programs**, keyed by the whole-program digest.
//!
//! # Soundness
//!
//! A cache hit must be indistinguishable from a fresh compilation — not
//! just in the returned code, but in every *observable side effect* of
//! compiling, because with a campaign-scoped cache the hit/miss pattern
//! of one seed depends on which seeds ran earlier on the same worker
//! (a `jobs`-dependent fact that must never leak into results):
//!
//! * The compiled IR itself: every compile input is part of the key.
//!   `jit::compile` is a pure function of the compilation unit's code
//!   (unit digest; the digest's *linkage* layer also pins the numeric
//!   `MethodId`/`StrId`/`ClassId` operands the IR embeds), the root
//!   profile fingerprint (all profile reads in the JIT are root-method
//!   reads), the compile-mode flags, and the environment fingerprint
//!   (VM kind, inline budget, fault set, IR-verify mode).
//! * IR-verifier defects: harvested at compile time, *stored with the
//!   entry and replayed on every hit*, so a hit bumps
//!   `ir_verify_defects` and appends the same rendered reports a fresh
//!   compile would.
//! * Injected compile-time crashes are cached as `Err` and re-raised.
//!
//! The VM still records the `Compiled` trace event and bumps
//! `stats.compilations` on a hit — the cache saves the *work*, never the
//! observable semantics.
//!
//! The cache is deliberately single-threaded (`Rc` + `RefCell`): each
//! campaign worker owns one shard on its own thread, which keeps the hot
//! path lock-free; determinism across `jobs` values is then exactly the
//! replay argument above. Capacity is bounded by whole-map epoch flushes
//! ([`CODE_CAP`] etc.) — a flush only costs future hits, it cannot change
//! any run's result.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use cse_bytecode::{BProgram, DecodedMethod, DecodedProgram, ProgramDigests};

use crate::config::{Tier, VmConfig};
use crate::exec::CrashInfo;
use crate::jit::ir::IrFunc;
use crate::profile::Fnv;

/// Everything that distinguishes one compilation from another, across
/// arbitrary programs (see the module docs for the soundness argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ArtifactKey {
    /// `ProgramDigests::units[root]` — the content digest of the whole
    /// compilation unit (root + static call closure, both digest layers).
    pub unit: u64,
    pub tier: Tier,
    pub osr: Option<u32>,
    pub speculate: bool,
    pub has_osr_code: bool,
    /// `MethodProfile::compile_fingerprint` of the root method at compile
    /// time (the JIT reads no other method's profile).
    pub profile_fp: u64,
    /// [`SharedArtifactCache::env_fingerprint`] of the executing
    /// configuration.
    pub env_fp: u64,
}

/// One cached compilation: the outcome plus every observable side effect
/// of compiling, so hits can replay what a fresh compile would have done.
#[derive(Clone)]
pub(crate) struct CachedCompile {
    /// Rendered IR-verifier defect reports harvested during this
    /// compilation (compile crashes can still report defects first).
    pub defects: Rc<Vec<String>>,
    /// Rendered translation-validation defect reports, replayed on hits
    /// exactly like `defects`.
    pub tv: Rc<Vec<String>>,
    /// The compile's fired-bug mask (`CompileCtx::fired`), replayed into
    /// `stats.fired_bugs` on every hit.
    pub fired: u64,
    pub result: Result<Rc<IrFunc>, CrashInfo>,
}

/// Epoch-flush capacity for the compiled-IR map.
const CODE_CAP: usize = 4096;
/// Epoch-flush capacity for the per-method decode map.
const DECODED_METHOD_CAP: usize = 8192;
/// Epoch-flush capacity for the whole-program decode map.
const DECODED_PROGRAM_CAP: usize = 512;

/// A per-worker shard of the campaign-level artifact cache; see the
/// module docs. Create with [`SharedArtifactCache::new`], then attach to
/// programs via [`SharedArtifactCache::attach`].
pub struct SharedArtifactCache {
    code: RefCell<HashMap<ArtifactKey, CachedCompile>>,
    /// Decoded method bodies, keyed by `MethodDigest::key()` (a decoded
    /// body is a pure re-layout of the code, which the digest pins).
    decoded_methods: RefCell<HashMap<u64, Rc<DecodedMethod>>>,
    /// Fully-assembled decoded programs, keyed by the whole-program
    /// digest.
    decoded_programs: RefCell<HashMap<u64, Rc<DecodedProgram>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl SharedArtifactCache {
    /// An empty cache shard.
    pub fn new() -> Rc<SharedArtifactCache> {
        Rc::new(SharedArtifactCache {
            code: RefCell::new(HashMap::new()),
            decoded_methods: RefCell::new(HashMap::new()),
            decoded_programs: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        })
    }

    /// Binds this cache to one program: computes the program's content
    /// digests and assembles its decoded form, sharing per-method decoded
    /// bodies (and whole decoded programs) with every program this shard
    /// has seen before.
    pub fn attach(self: &Rc<Self>, program: &BProgram) -> ProgramArtifacts {
        let digests = Rc::new(ProgramDigests::compute(program));
        let decoded = self.decoded_program(program, &digests);
        ProgramArtifacts { cache: self.clone(), digests, decoded }
    }

    /// Fingerprint of the compilation-relevant configuration facets: VM
    /// kind, inline budget, the active fault set (buggy passes compile
    /// *differently* when their bug is seeded), and the IR-verify and
    /// translation-validation modes (cached entries replay harvested
    /// defects, so entries compiled with a checker off must not serve a
    /// checking config).
    pub(crate) fn env_fingerprint(config: &VmConfig) -> u64 {
        let mut fp = Fnv::new();
        fp.u64(config.kind as u64);
        fp.u64(config.inline_limit as u64);
        fp.u64(config.faults.fingerprint());
        fp.u64(config.verify_ir as u64);
        fp.u64(config.tv as u64);
        fp.u64(u64::from(config.coverage));
        fp.finish()
    }

    fn decoded_program(&self, program: &BProgram, digests: &ProgramDigests) -> Rc<DecodedProgram> {
        if let Some(found) = self.decoded_programs.borrow().get(&digests.program) {
            return found.clone();
        }
        let mut methods_cache = self.decoded_methods.borrow_mut();
        if methods_cache.len() >= DECODED_METHOD_CAP {
            methods_cache.clear();
        }
        let methods = program
            .methods
            .iter()
            .zip(&digests.methods)
            .map(|(method, digest)| {
                methods_cache
                    .entry(digest.key())
                    .or_insert_with(|| Rc::new(DecodedMethod::decode(&method.code)))
                    .clone()
            })
            .collect();
        drop(methods_cache);
        let decoded = Rc::new(DecodedProgram {
            methods,
            strings: program.strings.iter().map(|s| Rc::new(s.clone())).collect(),
        });
        let mut programs = self.decoded_programs.borrow_mut();
        if programs.len() >= DECODED_PROGRAM_CAP {
            programs.clear();
        }
        programs.insert(digests.program, decoded.clone());
        decoded
    }

    pub(crate) fn lookup(&self, key: &ArtifactKey) -> Option<CachedCompile> {
        let entry = self.code.borrow().get(key).cloned();
        match &entry {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => self.misses.set(self.misses.get() + 1),
        }
        entry
    }

    pub(crate) fn insert(&self, key: ArtifactKey, value: CachedCompile) {
        let mut code = self.code.borrow_mut();
        if code.len() >= CODE_CAP {
            code.clear();
        }
        code.insert(key, value);
    }

    /// Cached compilations (successful and crashing).
    pub fn len(&self) -> usize {
        self.code.borrow().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.code.borrow().is_empty()
    }

    /// `(hits, misses)` over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

/// One program bound to a [`SharedArtifactCache`]: the shard handle, the
/// program's content digests, and its (shared) decoded form. Cheap to
/// clone; everything inside is refcounted.
#[derive(Clone)]
pub struct ProgramArtifacts {
    pub(crate) cache: Rc<SharedArtifactCache>,
    /// The program's content digests (also used by execution memoization
    /// upstream).
    pub digests: Rc<ProgramDigests>,
    pub(crate) decoded: Rc<DecodedProgram>,
}

impl ProgramArtifacts {
    /// Convenience: a fresh single-program cache, for callers that only
    /// ever run one program (tests, examples). Campaign code should
    /// create one [`SharedArtifactCache`] per worker and `attach` each
    /// program to it.
    pub fn for_program(program: &BProgram) -> ProgramArtifacts {
        SharedArtifactCache::new().attach(program)
    }

    /// The shard this program is bound to.
    pub fn cache(&self) -> &Rc<SharedArtifactCache> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Vm, VmConfig, VmKind};

    fn compile(source: &str) -> BProgram {
        let program = cse_lang::parse_and_check(source).unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    const HOT: &str = r#"
    class T {
        static int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += i; }
            return acc;
        }
        static void main() {
            int total = 0;
            for (int i = 0; i < 3000; i++) { total = f(100); }
            println(total);
        }
    }
    "#;

    #[test]
    fn cached_runs_are_observably_identical() {
        let program = compile(HOT);
        let config = VmConfig::for_kind(VmKind::HotSpotLike);
        let plain = Vm::run_program(&program, config.clone());
        let artifacts = ProgramArtifacts::for_program(&program);
        let first = Vm::run_program_cached(&program, config.clone(), &artifacts);
        let second = Vm::run_program_cached(&program, config, &artifacts);
        assert_eq!(plain.observable(), first.observable());
        assert_eq!(plain.observable(), second.observable());
        assert_eq!(plain.output, second.output);
        assert_eq!(plain.events, first.events);
        assert_eq!(plain.events, second.events);
        assert_eq!(plain.stats.compilations, second.stats.compilations);
    }

    #[test]
    fn second_run_hits_the_cache() {
        let program = compile(HOT);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let artifacts = ProgramArtifacts::for_program(&program);
        let first = Vm::run_program_cached(&program, config.clone(), &artifacts);
        assert!(first.stats.compilations > 0, "calibration: HOT must trigger the JIT");
        assert_eq!(first.stats.code_cache_hits, 0, "an empty cache cannot hit");
        let (_, misses_after_first) = artifacts.cache().stats();
        assert!(misses_after_first > 0);
        let second = Vm::run_program_cached(&program, config, &artifacts);
        assert_eq!(
            second.stats.code_cache_hits,
            second.stats.compilations + second.stats.osr_compilations,
            "a deterministic re-run must be served entirely from the cache"
        );
        let (hits, _) = artifacts.cache().stats();
        assert!(hits >= second.stats.code_cache_hits as u64);
    }

    #[test]
    fn different_fault_sets_do_not_share_code() {
        use crate::faults::{BugId, FaultInjector};
        let program = compile(HOT);
        let shard = SharedArtifactCache::new();
        let artifacts = shard.attach(&program);
        let correct = VmConfig::correct(VmKind::HotSpotLike);
        let buggy = correct.clone().with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));
        assert_ne!(
            SharedArtifactCache::env_fingerprint(&correct),
            SharedArtifactCache::env_fingerprint(&buggy)
        );
        let a = Vm::run_program_cached(&program, correct, &artifacts);
        let b = Vm::run_program_cached(&program, buggy, &artifacts);
        // The second config must not be served the first config's code.
        assert_eq!(b.stats.code_cache_hits, 0);
        assert!(a.outcome.is_completed() && b.outcome.is_completed());
    }

    #[test]
    fn mutants_share_unmutated_method_code() {
        // Two programs that differ in one method body: the unchanged hot
        // method's compilation must be served from the shard when the
        // second program runs.
        let seed = compile(HOT);
        let mutant = compile(&HOT.replace("total = f(100);", "total = f(100) + 1;"));
        let shard = SharedArtifactCache::new();
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let a = Vm::run_program_cached(&seed, config.clone(), &shard.attach(&seed));
        assert!(a.stats.compilations > 0);
        let b = Vm::run_program_cached(&mutant, config, &shard.attach(&mutant));
        assert!(
            b.stats.code_cache_hits > 0,
            "unmutated f must be shared across the mutant boundary: {:?}",
            b.stats
        );
    }

    #[test]
    fn decoded_methods_are_shared_across_programs() {
        let seed = compile(HOT);
        let mutant = compile(&HOT.replace("total = f(100);", "total = f(100) + 1;"));
        let shard = SharedArtifactCache::new();
        let a = shard.attach(&seed);
        let b = shard.attach(&mutant);
        let f = seed.find_method("T", "f").unwrap();
        let f_mut = mutant.find_method("T", "f").unwrap();
        assert!(
            Rc::ptr_eq(&a.decoded.methods[f.0 as usize], &b.decoded.methods[f_mut.0 as usize]),
            "unchanged method bodies must decode once per shard"
        );
        let main = seed.find_method("T", "main").unwrap();
        let main_mut = mutant.find_method("T", "main").unwrap();
        assert!(
            !Rc::ptr_eq(
                &a.decoded.methods[main.0 as usize],
                &b.decoded.methods[main_mut.0 as usize]
            ),
            "the mutated method must not be shared"
        );
        // Re-attaching an identical program shares the whole decoded form.
        let c = shard.attach(&seed);
        assert!(Rc::ptr_eq(&a.decoded, &c.decoded));
    }
}
