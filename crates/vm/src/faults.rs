//! The injected-bug catalog.
//!
//! The paper evaluates Artemis against production JVMs whose JIT compilers
//! contain real bugs. An offline reproduction needs JIT compilers with
//! *known* bugs, so each VM profile ships a catalog of seeded defects
//! modeled on the bug classes the paper reports (Table 2): ideal-loop
//! optimization, global value numbering, global code motion (the Figure 2
//! `JDK-8288975` store-sinking bug), escape analysis, register allocation,
//! code generation, GC crashes caused by JIT heap corruption, and so on.
//!
//! Every bug has a *component* (Table 2 row), a *symptom* (Table 1 row:
//! mis-compilation / crash / performance), and a structural *trigger*
//! implemented inside the corresponding optimization pass. Campaign
//! statistics can therefore be deduplicated against ground truth, exactly
//! like the paper's "Duplicate" accounting.

use std::collections::BTreeSet;

/// JIT compiler components, following Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    // HotSpot-like components.
    InliningC1,
    IdealGraphBuilding,
    IdealLoopOptimization,
    GlobalConstantPropagation,
    GlobalValueNumbering,
    EscapeAnalysis,
    GlobalCodeMotion,
    RegisterAllocation,
    CodeGeneration,
    CodeExecution,
    // OpenJ9-like components.
    LocalValuePropagation,
    GlobalValuePropagation,
    LoopVectorization,
    Deoptimization,
    Recompilation,
    OtherJitComponents,
    GarbageCollection,
    // ART-like component.
    OptimizingCompiler,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Component::InliningC1 => "Inlining, C1",
            Component::IdealGraphBuilding => "Ideal Graph Building, C2",
            Component::IdealLoopOptimization => "Ideal Loop Optimizat., C2",
            Component::GlobalConstantPropagation => "Global Constant Prop., C2",
            Component::GlobalValueNumbering => "Global Value Number., C2",
            Component::EscapeAnalysis => "Escape Analysis, C2",
            Component::GlobalCodeMotion => "Global Code Motion, C2",
            Component::RegisterAllocation => "Register Allocation",
            Component::CodeGeneration => "Code Generation",
            Component::CodeExecution => "Code Execution",
            Component::LocalValuePropagation => "Local Value Propa.",
            Component::GlobalValuePropagation => "Global Value Propa.",
            Component::LoopVectorization => "Loop Vectorization",
            Component::Deoptimization => "De-optimization",
            Component::Recompilation => "Recompilation",
            Component::OtherJitComponents => "Other JIT Compone.",
            Component::GarbageCollection => "Garbage Collection",
            Component::OptimizingCompiler => "OptimizingCompiler",
        };
        f.write_str(name)
    }
}

/// Bug symptom classes (the paper's Table 1 "Types of reported bugs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symptom {
    MisCompilation,
    Crash,
    Performance,
}

/// Every injected bug, named after its rough real-world inspiration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugId {
    // ---- HotSpot-like tier-2 ("C2") bugs --------------------------------
    /// Inlining (C1): asserts when inlining a callee that declares its own
    /// exception handler.
    HsInlineHandlerAssert,
    /// Ideal graph building: asserts on methods whose loop nesting is ≥ 3
    /// with a switch inside the innermost loop.
    HsGraphDeepLoops,
    /// Ideal graph building: asserts when a method grows beyond a block
    /// budget after inlining.
    HsGraphBlockBudget,
    /// Ideal loop optimization: asserts when unrolling a countable loop
    /// with step > 1 and a negative initial bound.
    HsLoopUnrollStep,
    /// Ideal loop optimization: LICM hoists a field load out of a loop that
    /// stores to the same field inside a `try` handler (alias check ignores
    /// exceptional edges) — mis-compilation.
    HsLicmAliasedLoad,
    /// Global code motion sinks a field read-modify-write into a deeper
    /// loop whose estimated frequency ties with its home block — the
    /// JDK-8288975 analog from the paper's Figure 2. Mis-compilation.
    HsGcmStoreSink,
    /// GVN: array loads separated by a store to the same array are
    /// value-numbered as equal when the store's index "cannot alias" by a
    /// mod-256 comparison — mis-compilation.
    HsGvnArrayAlias,
    /// GVN: asserts when the value table grows past a budget while
    /// numbering long-typed expressions.
    HsGvnTableAssert,
    /// Escape analysis: asserts when a fresh allocation is stored to a
    /// field inside a loop.
    HsEscapeLoopStore,
    /// Register allocation: asserts when live values exceed the allocator's
    /// register budget.
    HsRegAllocPressure,
    /// Code generation: asserts lowering a multi-dimensional allocation
    /// inside a loop.
    HsCodegenMultiArray,
    /// Compiled code crashes (SIGSEGV) executing a narrowing conversion
    /// fed by a field load in tier-2 code.
    HsCodeExecNarrowSegv,
    /// Global constant propagation folds `x % c` with the sign convention
    /// of Euclidean remainder — mis-compilation.
    HsConstPropRemSign,
    /// Tier-2 code of a loop containing a switch re-executes loop bodies
    /// quadratically — performance bug.
    HsPerfQuadraticLoop,

    // ---- OpenJ9-like bugs ------------------------------------------------
    /// Local value propagation asserts on blocks with many constants.
    J9LocalVpConstAssert,
    /// Global value propagation: `(x >>> 0)` range-analyzed as `< 2^31`,
    /// folding a comparison — mis-compilation.
    J9GlobalVpShiftRange,
    /// Global value propagation asserts when propagating through a loop
    /// `phi` of a byte-typed value.
    J9GlobalVpByteAssert,
    /// Loop vectorizer asserts on stride-1 array loops with mixed widths.
    J9LoopVecMixedWidth,
    /// De-optimization restores the highest-numbered local from a stale
    /// value — mis-compilation visible only after a deopt.
    J9DeoptStaleLocal,
    /// Register allocation asserts under long-pressure.
    J9RegAllocLongPressure,
    /// Code generation asserts lowering `long` multiplication fed by OSR
    /// entry state.
    J9CodegenLongMul,
    /// Code generation asserts lowering string concatenation in a loop.
    J9CodegenConcatLoop,
    /// Recompilation asserts when a tier-1 method with a live OSR body is
    /// promoted to tier 2.
    J9RecompOsrPromote,
    /// JIT/interpreter interaction ("other"): asserts when compiled code
    /// calls back into an interpreted callee more than a budget.
    J9JitIntCallAssert,
    /// Synchronization stub ("other"): asserts on deeply nested try
    /// regions in tier-2 code.
    J9OtherNestedTry,
    /// Tier-2 allocation sinking writes past the end of an object; the
    /// *garbage collector* crashes at the next collection (the paper's
    /// dominant OpenJ9 crash class).
    J9GcCorruptAllocSink,
    /// Unrolled allocation corrupts a reference array — GC crash.
    J9GcCorruptUnrollAlloc,
    /// Scalarized object re-materialization writes a wild reference — GC
    /// crash.
    J9GcCorruptRematerialize,

    // ---- ART-like bugs -----------------------------------------------------
    /// OptimizingCompiler asserts building methods with ≥ 2 handlers.
    ArtOptCompHandlerAssert,
    /// Method-JIT folds `(x ^ -1)` to `-x` for byte-typed field loads —
    /// mis-compilation.
    ArtOptCompXorFold,
    /// OSR entry transfers locals with an off-by-one when the frame holds
    /// two or more `long` locals — mis-compilation.
    ArtOsrLongTransfer,
    /// OptimizingCompiler asserts on switches with > 8 arms.
    ArtOptCompSwitchAssert,
}

impl BugId {
    /// The affected JIT component (Table 2 classification).
    pub fn component(self) -> Component {
        use BugId::*;
        match self {
            HsInlineHandlerAssert => Component::InliningC1,
            HsGraphDeepLoops | HsGraphBlockBudget => Component::IdealGraphBuilding,
            HsLoopUnrollStep | HsLicmAliasedLoad | HsPerfQuadraticLoop => {
                Component::IdealLoopOptimization
            }
            HsGcmStoreSink => Component::GlobalCodeMotion,
            HsGvnArrayAlias | HsGvnTableAssert => Component::GlobalValueNumbering,
            HsEscapeLoopStore => Component::EscapeAnalysis,
            HsRegAllocPressure => Component::RegisterAllocation,
            HsCodegenMultiArray => Component::CodeGeneration,
            HsCodeExecNarrowSegv => Component::CodeExecution,
            HsConstPropRemSign => Component::GlobalConstantPropagation,
            J9LocalVpConstAssert => Component::LocalValuePropagation,
            J9GlobalVpShiftRange | J9GlobalVpByteAssert => Component::GlobalValuePropagation,
            J9LoopVecMixedWidth => Component::LoopVectorization,
            J9DeoptStaleLocal => Component::Deoptimization,
            J9RegAllocLongPressure => Component::RegisterAllocation,
            J9CodegenLongMul | J9CodegenConcatLoop => Component::CodeGeneration,
            J9RecompOsrPromote => Component::Recompilation,
            J9JitIntCallAssert | J9OtherNestedTry => Component::OtherJitComponents,
            J9GcCorruptAllocSink | J9GcCorruptUnrollAlloc | J9GcCorruptRematerialize => {
                Component::GarbageCollection
            }
            ArtOptCompHandlerAssert
            | ArtOptCompXorFold
            | ArtOsrLongTransfer
            | ArtOptCompSwitchAssert => Component::OptimizingCompiler,
        }
    }

    /// The symptom class (Table 1 classification).
    pub fn symptom(self) -> Symptom {
        use BugId::*;
        match self {
            HsLicmAliasedLoad | HsGcmStoreSink | HsGvnArrayAlias | HsConstPropRemSign
            | J9GlobalVpShiftRange | J9DeoptStaleLocal | ArtOptCompXorFold | ArtOsrLongTransfer => {
                Symptom::MisCompilation
            }
            HsPerfQuadraticLoop => Symptom::Performance,
            _ => Symptom::Crash,
        }
    }

    /// All catalogued bugs.
    pub fn all() -> &'static [BugId] {
        use BugId::*;
        &[
            HsInlineHandlerAssert,
            HsGraphDeepLoops,
            HsGraphBlockBudget,
            HsLoopUnrollStep,
            HsLicmAliasedLoad,
            HsGcmStoreSink,
            HsGvnArrayAlias,
            HsGvnTableAssert,
            HsEscapeLoopStore,
            HsRegAllocPressure,
            HsCodegenMultiArray,
            HsCodeExecNarrowSegv,
            HsConstPropRemSign,
            HsPerfQuadraticLoop,
            J9LocalVpConstAssert,
            J9GlobalVpShiftRange,
            J9GlobalVpByteAssert,
            J9LoopVecMixedWidth,
            J9DeoptStaleLocal,
            J9RegAllocLongPressure,
            J9CodegenLongMul,
            J9CodegenConcatLoop,
            J9RecompOsrPromote,
            J9JitIntCallAssert,
            J9OtherNestedTry,
            J9GcCorruptAllocSink,
            J9GcCorruptUnrollAlloc,
            J9GcCorruptRematerialize,
            ArtOptCompHandlerAssert,
            ArtOptCompXorFold,
            ArtOsrLongTransfer,
            ArtOptCompSwitchAssert,
        ]
    }

    /// The default seeded-bug set of each VM profile.
    pub fn default_set(kind: crate::config::VmKind) -> BTreeSet<BugId> {
        use BugId::*;
        let bugs: &[BugId] = match kind {
            crate::config::VmKind::HotSpotLike => &[
                HsInlineHandlerAssert,
                HsGraphDeepLoops,
                HsGraphBlockBudget,
                HsLoopUnrollStep,
                HsLicmAliasedLoad,
                HsGcmStoreSink,
                HsGvnArrayAlias,
                HsGvnTableAssert,
                HsEscapeLoopStore,
                HsRegAllocPressure,
                HsCodegenMultiArray,
                HsCodeExecNarrowSegv,
                HsConstPropRemSign,
                HsPerfQuadraticLoop,
            ],
            crate::config::VmKind::OpenJ9Like => &[
                J9LocalVpConstAssert,
                J9GlobalVpShiftRange,
                J9GlobalVpByteAssert,
                J9LoopVecMixedWidth,
                J9DeoptStaleLocal,
                J9RegAllocLongPressure,
                J9CodegenLongMul,
                J9CodegenConcatLoop,
                J9RecompOsrPromote,
                J9JitIntCallAssert,
                J9OtherNestedTry,
                J9GcCorruptAllocSink,
                J9GcCorruptUnrollAlloc,
                J9GcCorruptRematerialize,
            ],
            crate::config::VmKind::ArtLike => &[
                ArtOptCompHandlerAssert,
                ArtOptCompXorFold,
                ArtOsrLongTransfer,
                ArtOptCompSwitchAssert,
            ],
        };
        bugs.iter().copied().collect()
    }
}

/// The set of bugs active in a VM instance.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    active: BTreeSet<BugId>,
}

impl FaultInjector {
    /// No injected bugs (a "correct" VM — the substrate-soundness baseline).
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// Injector with exactly the given bugs.
    pub fn with(bugs: impl IntoIterator<Item = BugId>) -> FaultInjector {
        FaultInjector { active: bugs.into_iter().collect() }
    }

    /// Whether a bug is active.
    pub fn active(&self, bug: BugId) -> bool {
        self.active.contains(&bug)
    }

    /// Active bug set.
    pub fn bugs(&self) -> impl Iterator<Item = BugId> + '_ {
        self.active.iter().copied()
    }

    /// Whether no bugs are seeded.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Order-stable fingerprint of the active bug set (the `BTreeSet`
    /// iterates in `BugId` order). Part of the JIT code-cache key: buggy
    /// passes compile differently depending on which bugs are seeded, so
    /// code compiled under one fault set must never be reused under
    /// another.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::profile::Fnv::new();
        fp.u64(self.active.len() as u64);
        for &bug in &self.active {
            fp.u64(bug as u64);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmKind;

    #[test]
    fn every_bug_has_component_and_symptom() {
        for &bug in BugId::all() {
            let _ = bug.component();
            let _ = bug.symptom();
        }
        assert!(BugId::all().len() >= 30);
    }

    #[test]
    fn default_sets_are_disjoint_and_nonempty() {
        let hs = BugId::default_set(VmKind::HotSpotLike);
        let j9 = BugId::default_set(VmKind::OpenJ9Like);
        let art = BugId::default_set(VmKind::ArtLike);
        assert!(!hs.is_empty() && !j9.is_empty() && !art.is_empty());
        assert!(hs.intersection(&j9).count() == 0);
        assert!(hs.intersection(&art).count() == 0);
        assert!(j9.intersection(&art).count() == 0);
        assert_eq!(hs.len() + j9.len() + art.len(), BugId::all().len());
    }

    #[test]
    fn symptom_mix_matches_paper_shape() {
        // The paper's Table 1: crashes dominate, >20% mis-compilations,
        // exactly one performance bug (HotSpot).
        let all = BugId::all();
        let miscomp = all.iter().filter(|b| b.symptom() == Symptom::MisCompilation).count();
        let crash = all.iter().filter(|b| b.symptom() == Symptom::Crash).count();
        let perf = all.iter().filter(|b| b.symptom() == Symptom::Performance).count();
        assert!(crash > miscomp);
        assert!(miscomp * 5 >= all.len(), "at least ~20% mis-compilations");
        assert_eq!(perf, 1);
    }

    #[test]
    fn gc_bugs_are_openj9_flavored() {
        for &bug in BugId::all() {
            if bug.component() == Component::GarbageCollection {
                assert!(BugId::default_set(VmKind::OpenJ9Like).contains(&bug));
            }
        }
    }

    #[test]
    fn injector_activation() {
        let inj = FaultInjector::with([BugId::HsGcmStoreSink]);
        assert!(inj.active(BugId::HsGcmStoreSink));
        assert!(!inj.active(BugId::HsGvnArrayAlias));
        assert!(FaultInjector::none().is_empty());
    }
}
