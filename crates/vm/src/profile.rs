//! Per-method profiling state — the paper's counter set `C_m`
//! (Definition 3.2) plus the branch profiles that drive speculation.

use crate::config::Tier;

/// Runtime profile of one method.
#[derive(Debug, Clone, Default)]
pub struct MethodProfile {
    /// The method counter `c_0`.
    pub invocations: u64,
    /// Back-edge counters `c_1 .. c_M`, indexed like
    /// `BMethod::loop_headers`.
    pub backedges: Vec<u64>,
    /// Per-branch (bytecode pc) taken/not-taken counts gathered by the
    /// interpreter; tier-2 compilation speculates on zero entries. Dense,
    /// indexed by pc and grown lazily: recording a branch is two counter
    /// bumps on the interpreter hot path, never a hash lookup.
    pub branches: Vec<BranchProfile>,
    /// Per-switch hit counts, indexed by pc then arm, with the default
    /// arm stored last (`cases + 1` slots per recorded switch). Dense for
    /// the same hot-path reason as `branches`.
    pub switch_hits: Vec<Vec<u64>>,
    /// Current compiled tier (`Tier::INTERP` when interpreted).
    pub tier: Tier,
    /// De-optimizations taken so far.
    pub deopts: u32,
    /// Permanently banned from compilation (too many deopts).
    pub compile_banned: bool,
    /// Bytecode pcs whose speculation already failed once (the trap's
    /// resume target): recompilations never re-speculate these sites,
    /// like HotSpot's per-method trap history.
    pub no_speculate: std::collections::HashSet<u32>,
}

/// Taken / not-taken counts for a conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Times the condition evaluated to `true`.
    pub taken: u64,
    /// Times the condition evaluated to `false`.
    pub not_taken: u64,
}

impl MethodProfile {
    /// Records a conditional-branch outcome.
    pub fn record_branch(&mut self, pc: u32, cond: bool) {
        let pc = pc as usize;
        if pc >= self.branches.len() {
            self.branches.resize(pc + 1, BranchProfile::default());
        }
        let entry = &mut self.branches[pc];
        if cond {
            entry.taken += 1;
        } else {
            entry.not_taken += 1;
        }
    }

    /// Records which switch arm was selected (`usize::MAX` = the default
    /// arm). `cases` is the switch's case count, fixed per pc, so the
    /// per-pc table is sized once on first record.
    pub fn record_switch(&mut self, pc: u32, arm: usize, cases: usize) {
        let pc = pc as usize;
        if pc >= self.switch_hits.len() {
            self.switch_hits.resize(pc + 1, Vec::new());
        }
        let arms = &mut self.switch_hits[pc];
        if arms.is_empty() {
            arms.resize(cases + 1, 0);
        }
        let idx = if arm == usize::MAX { cases } else { arm };
        arms[idx] += 1;
    }

    /// The branch profile at a pc, if the interpreter ever saw it.
    pub fn branch(&self, pc: u32) -> Option<BranchProfile> {
        self.branches.get(pc as usize).copied().filter(|b| b.taken + b.not_taken > 0)
    }

    /// Hit count of a switch arm (`usize::MAX` = the default arm).
    pub fn switch_arm_hits(&self, pc: u32, arm: usize) -> u64 {
        let Some(arms) = self.switch_hits.get(pc as usize) else {
            return 0;
        };
        if arms.is_empty() {
            return 0;
        }
        let idx = if arm == usize::MAX { arms.len() - 1 } else { arm };
        arms.get(idx).copied().unwrap_or(0)
    }

    /// Resets counters after a de-optimization: the method re-warms from
    /// the interpreter (the paper's "cooled down by uncommon traps").
    pub fn cool_down(&mut self, max_deopts: u32) {
        self.invocations = 0;
        for counter in &mut self.backedges {
            *counter = 0;
        }
        self.tier = Tier::INTERP;
        self.deopts += 1;
        if self.deopts >= max_deopts {
            self.compile_banned = true;
        }
    }

    /// The temperature of the method right now: the maximum band any of
    /// its counters reached given the tier thresholds (Definition 3.2,
    /// `τ(m) = max τ(c)`), capped by what has actually been compiled.
    pub fn temperature(&self) -> Tier {
        self.tier
    }

    /// Order-stable fingerprint of every field a compilation can read
    /// (see [`crate::jit::CompileCtx`]): speculation inputs (branch and
    /// switch profiles, trap history), warmth predicates (invocation and
    /// back-edge counters), and recompilation state (deopt count). Two
    /// profiles with equal fingerprints produce identical compiled code
    /// for the same method, tier, and configuration — the soundness basis
    /// of the cross-run artifact cache ([`crate::jit::SharedArtifactCache`]).
    pub fn compile_fingerprint(&self) -> u64 {
        let mut fp = Fnv::new();
        fp.u64(self.invocations);
        fp.u64(self.backedges.len() as u64);
        for &c in &self.backedges {
            fp.u64(c);
        }
        // The dense tables iterate in pc order, so hashing the populated
        // entries is already a pure function of the profile's contents.
        let seen_branches = self.branches.iter().filter(|b| b.taken + b.not_taken > 0);
        fp.u64(seen_branches.clone().count() as u64);
        for (pc, b) in self.branches.iter().enumerate() {
            if b.taken + b.not_taken > 0 {
                fp.u64(pc as u64);
                fp.u64(b.taken);
                fp.u64(b.not_taken);
            }
        }
        let seen_arms = self
            .switch_hits
            .iter()
            .enumerate()
            .flat_map(|(pc, arms)| arms.iter().enumerate().map(move |(arm, &h)| (pc, arm, h)))
            .filter(|&(_, _, hits)| hits > 0);
        fp.u64(seen_arms.clone().count() as u64);
        for (pc, arm, hits) in seen_arms {
            fp.u64(pc as u64);
            fp.u64(arm as u64);
            fp.u64(hits);
        }
        fp.u64(self.deopts as u64);
        fp.u64(self.compile_banned as u64);
        let mut no_speculate: Vec<u32> = self.no_speculate.iter().copied().collect();
        no_speculate.sort_unstable();
        fp.u64(no_speculate.len() as u64);
        for pc in no_speculate {
            fp.u64(pc as u64);
        }
        fp.finish()
    }
}

/// Minimal FNV-1a accumulator (the workspace is dependency-free).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_profiles_accumulate() {
        let mut p = MethodProfile::default();
        p.record_branch(4, true);
        p.record_branch(4, true);
        p.record_branch(4, false);
        assert_eq!(p.branch(4), Some(BranchProfile { taken: 2, not_taken: 1 }));
        assert_eq!(p.branch(5), None);
    }

    #[test]
    fn switch_profiles_accumulate() {
        let mut p = MethodProfile::default();
        p.record_switch(10, 0, 4);
        p.record_switch(10, usize::MAX, 4);
        p.record_switch(10, usize::MAX, 4);
        assert_eq!(p.switch_arm_hits(10, 0), 1);
        assert_eq!(p.switch_arm_hits(10, usize::MAX), 2);
        assert_eq!(p.switch_arm_hits(10, 3), 0);
    }

    #[test]
    fn compile_fingerprint_tracks_compile_relevant_state() {
        let mut a = MethodProfile::default();
        let mut b = MethodProfile::default();
        assert_eq!(a.compile_fingerprint(), b.compile_fingerprint());
        // Insertion order must not matter (HashMap iteration is unordered).
        a.record_branch(4, true);
        a.record_branch(9, false);
        b.record_branch(9, false);
        b.record_branch(4, true);
        assert_eq!(a.compile_fingerprint(), b.compile_fingerprint());
        // Any compile-visible change must move the fingerprint.
        let before = a.compile_fingerprint();
        a.record_branch(4, true);
        assert_ne!(a.compile_fingerprint(), before);
        let before = a.compile_fingerprint();
        a.no_speculate.insert(12);
        assert_ne!(a.compile_fingerprint(), before);
        let before = a.compile_fingerprint();
        a.invocations += 1;
        assert_ne!(a.compile_fingerprint(), before);
    }

    #[test]
    fn cool_down_resets_and_bans() {
        let mut p = MethodProfile {
            invocations: 500,
            backedges: vec![9, 9],
            tier: Tier::T2,
            ..Default::default()
        };
        p.cool_down(2);
        assert_eq!(p.invocations, 0);
        assert_eq!(p.backedges, vec![0, 0]);
        assert_eq!(p.tier, Tier::INTERP);
        assert!(!p.compile_banned);
        p.cool_down(2);
        assert!(p.compile_banned);
    }
}
