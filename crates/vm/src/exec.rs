//! Execution results and outcomes.

use crate::events::TraceEvent;
use crate::faults::{BugId, Component};

/// How a crash manifests (the observable symptom a bug report would carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Segmentation fault in generated code.
    Sigsegv,
    /// Emergency abort.
    Sigabrt,
    /// Fatal arithmetic error in generated code.
    Sigfpe,
    /// Internal assertion failure (`guarantee()` / `TR_ASSERT` analog).
    AssertionFailure,
    /// The collector found a corrupted heap.
    GcCorruption,
}

/// When the crash happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPhase {
    /// While the JIT compiler was compiling.
    Compiling,
    /// While executing compiled code.
    Executing,
    /// Inside the garbage collector.
    Gc,
}

/// A VM crash report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// The injected bug that fired (ground truth for deduplication).
    pub bug: BugId,
    /// Affected JIT component (Table 2 classification).
    pub component: Component,
    pub kind: CrashKind,
    pub phase: CrashPhase,
    /// Free-form context (method name, pass detail) — the "stack trace".
    pub detail: String,
}

/// A deterministic resource budget tracked by the VM. Exceeding one ends
/// the run gracefully with [`Outcome::BudgetExceeded`] instead of a
/// panic, a host stack overflow, or a wall-clock hang — which keeps
/// triage verdicts and campaign digests machine-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Logical heap bytes (`VmConfig::max_heap_bytes` / `CSE_HEAP_LIMIT`).
    HeapBytes,
    /// Hard harness call-depth cap (`VmConfig::stack_limit` /
    /// `CSE_STACK_LIMIT`) — distinct from `max_call_depth`, which models
    /// the *guest* `StackOverflowError` and stays catchable.
    StackDepth,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::HeapBytes => write!(f, "heap-bytes"),
            Resource::StackDepth => write!(f, "stack-depth"),
        }
    }
}

/// Terminal states of a VM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to completion (possibly by an uncaught exception,
    /// which is part of the printed output and thus of the oracle).
    Completed { uncaught_exception: bool },
    /// The VM crashed.
    Crash(CrashInfo),
    /// The step budget was exhausted (wall-clock timeout analog).
    Timeout,
    /// The heap budget was exhausted.
    OutOfMemory,
    /// A deterministic resource budget was exhausted (heap bytes, stack
    /// depth). First-class and graceful: validation discards these runs
    /// exactly like timeouts instead of raising an oracle verdict.
    BudgetExceeded(Resource),
}

impl Outcome {
    /// Whether this is a normal completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// Whether the run ended because a harness resource budget ran out
    /// (fuel, heap bytes, stack depth). Such runs carry no oracle
    /// verdict: the differential harness discards them, because a
    /// temperature change can legitimately move a program across a
    /// budget boundary. `OutOfMemory` (the object-count cap) is *not*
    /// included — it models the guest heap size and has always been part
    /// of the comparable observable.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, Outcome::Timeout | Outcome::BudgetExceeded(_))
    }
}

/// Execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Bytecode instructions interpreted.
    pub interp_ops: u64,
    /// IR instructions executed in compiled code.
    pub jit_ops: u64,
    /// Method compilations performed.
    pub compilations: u32,
    /// OSR compilations performed.
    pub osr_compilations: u32,
    /// Compilations served from the cross-run artifact cache
    /// (`crate::jit::SharedArtifactCache`); always a subset of `compilations +
    /// osr_compilations` — a hit still counts as a compilation, it only
    /// skips the work.
    pub code_cache_hits: u32,
    /// De-optimizations taken.
    pub deopts: u32,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Method invocations (all engines).
    pub calls: u64,
    /// Mute-nesting depth when the program ended (a nonzero value means an
    /// exception skipped an `__unmute()`; engines must agree on it).
    pub mute_depth_end: u32,
    /// Whether the wall-clock watchdog (not the fuel budget) ended the
    /// run. Lets supervisors distinguish "program too expensive" from
    /// "VM wedged in real time".
    pub watchdog_fired: bool,
    /// Defects the static IR verifier found across this run's
    /// compilations (0 unless `VmConfig::verify_ir` enables it). The
    /// verifier is an oracle: defects are counted and reported, never
    /// acted on.
    pub ir_verify_defects: u32,
    /// Refinement violations the translation validator found across this
    /// run's compilations (0 unless `VmConfig::tv` enables it). Like the
    /// static verifier, an observation-only oracle.
    pub tv_defects: u32,
    /// Bitmask (by `BugId` discriminant) of injected bugs whose trigger
    /// was queried and found active at least once during the run —
    /// compile-time sites included (replayed from the artifact cache on
    /// hits). A bug absent from this mask provably could not have
    /// influenced the run, so ablating it cannot change the observable;
    /// attribution uses that to skip reruns.
    pub fired_bugs: u64,
    /// JIT-behavior coverage observed during this run (all-zero unless
    /// `VmConfig::coverage` enables collection). Excluded from `Debug`
    /// so rendered observables stay identical across the gate.
    pub coverage: crate::coverage::CoverageMap,
}

impl ExecStats {
    /// Total executed operations across engines.
    pub fn total_ops(&self) -> u64 {
        self.interp_ops + self.jit_ops
    }
}

// Manual `Debug` listing exactly the pre-coverage fields: rendered
// stats feed comparable observables and incident payloads, which must
// be byte-identical whether or not coverage collection is enabled.
impl std::fmt::Debug for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecStats")
            .field("interp_ops", &self.interp_ops)
            .field("jit_ops", &self.jit_ops)
            .field("compilations", &self.compilations)
            .field("osr_compilations", &self.osr_compilations)
            .field("code_cache_hits", &self.code_cache_hits)
            .field("deopts", &self.deopts)
            .field("gc_runs", &self.gc_runs)
            .field("calls", &self.calls)
            .field("mute_depth_end", &self.mute_depth_end)
            .field("watchdog_fired", &self.watchdog_fired)
            .field("ir_verify_defects", &self.ir_verify_defects)
            .field("tv_defects", &self.tv_defects)
            .field("fired_bugs", &self.fired_bugs)
            .finish()
    }
}

/// The result of running a program on the VM.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Everything the program printed (including the uncaught-exception
    /// banner, when applicable).
    pub output: String,
    pub outcome: Outcome,
    /// Compilation-state transition log.
    pub events: Vec<TraceEvent>,
    pub stats: ExecStats,
    /// Rendered IR-verifier defect reports, in compilation order (empty
    /// unless `VmConfig::verify_ir` enables verification and a pass
    /// produced malformed IR). Deliberately *not* part of
    /// [`ExecutionResult::observable`]: the verifier is a third oracle
    /// and must never perturb the differential one.
    pub ir_verify: Vec<String>,
    /// Rendered translation-validation defect reports, in compilation
    /// order (empty unless `VmConfig::tv` enables validation and a pass
    /// failed its refinement contract). Excluded from
    /// [`ExecutionResult::observable`] for the same reason as
    /// [`ExecutionResult::ir_verify`].
    pub tv: Vec<String>,
}

impl ExecutionResult {
    /// The observable behavior used by the cross-validation oracle:
    /// printed output plus the outcome class. Two runs of the same
    /// program's compilation space must agree on this string (§3.2).
    pub fn observable(&self) -> String {
        match &self.outcome {
            Outcome::Completed { .. } => format!("completed\n{}", self.output),
            Outcome::Crash(info) => format!(
                "crash kind={:?} component={} bug={:?} phase={:?}",
                info.kind, info.component, info.bug, info.phase
            ),
            Outcome::Timeout => "timeout".to_string(),
            Outcome::OutOfMemory => "out-of-memory".to_string(),
            Outcome::BudgetExceeded(resource) => format!("budget-exceeded {resource}"),
        }
    }

    /// Whether the run crashed.
    pub fn crashed(&self) -> bool {
        matches!(self.outcome, Outcome::Crash(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observable_distinguishes_outcomes() {
        let ok = ExecutionResult {
            output: "3\n".into(),
            outcome: Outcome::Completed { uncaught_exception: false },
            events: vec![],
            stats: ExecStats::default(),
            ir_verify: vec![],
            tv: vec![],
        };
        let timeout = ExecutionResult {
            output: "3\n".into(),
            outcome: Outcome::Timeout,
            events: vec![],
            stats: ExecStats::default(),
            ir_verify: vec![],
            tv: vec![],
        };
        assert_ne!(ok.observable(), timeout.observable());
        assert!(ok.outcome.is_completed());
        assert!(!ok.crashed());
    }

    #[test]
    fn stats_totals() {
        let stats = ExecStats { interp_ops: 10, jit_ops: 32, ..Default::default() };
        assert_eq!(stats.total_ops(), 42);
    }
}
