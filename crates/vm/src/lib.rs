//! A tiered language virtual machine for MiniJava bytecode.
//!
//! The VM substrate the CSE/Artemis reproduction validates: a bytecode
//! interpreter with profiling counters, multi-level JIT compilation with
//! real optimization passes, on-stack replacement, speculation with
//! uncommon traps and de-optimization, a mark-sweep GC — and a catalog of
//! injected JIT bugs modeled on the paper's reported bug classes, so that
//! campaigns have ground truth.
//!
//! # Examples
//!
//! ```
//! use cse_vm::{Vm, VmConfig, VmKind};
//!
//! let program = cse_lang::parse_and_check(
//!     "class T { static void main() { println(40 + 2); } }",
//! ).unwrap();
//! let compiled = cse_bytecode::compile(&program).unwrap();
//! let result = Vm::run_program(&compiled, VmConfig::correct(VmKind::HotSpotLike));
//! assert_eq!(result.output, "42\n");
//! assert!(result.outcome.is_completed());
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod coverage;
pub mod events;
pub mod exec;
pub mod faults;
pub mod heap;
mod interp;
pub mod jit;
pub mod plan;
pub mod profile;
pub mod supervise;
pub mod value;

use std::collections::HashMap;
use std::rc::Rc;

use cse_bytecode::{ArrKind, BProgram, ClassId, ExcKind, MethodId, PrintKind};

pub use config::{Tier, TierThresholds, TvMode, VerifyMode, VmConfig, VmKind};
pub use coverage::CoverageMap;
pub use events::{CompileReason, DeoptReason, TraceEvent};
pub use exec::{CrashInfo, CrashKind, CrashPhase, ExecStats, ExecutionResult, Outcome, Resource};
pub use faults::{BugId, Component, FaultInjector, Symptom};
pub use jit::{ProgramArtifacts, SharedArtifactCache};
pub use plan::{ExecMode, ForcedPlan};
pub use supervise::{contain_panics, supervised_run, supervised_run_cached, VmPanic};
pub use value::{Str, Value};

use heap::{ArrData, Heap, HeapError, HeapObj};
use jit::ir::IrFunc;
use jit::IrOutcome;
use profile::MethodProfile;

/// Non-local exits threaded through interpretation and compiled-code
/// execution.
#[derive(Debug, Clone)]
pub(crate) enum Exit {
    /// A MiniJava exception looking for a handler.
    Exception { kind: ExcKind, code: i32 },
    /// A VM crash (injected bug fired).
    Crash(CrashInfo),
    /// Step budget exhausted.
    OutOfFuel,
    /// Heap budget exhausted.
    OutOfMemory,
    /// A deterministic resource budget exhausted (heap bytes, stack
    /// depth); graceful, not catchable by the guest.
    BudgetExceeded(exec::Resource),
}

/// One interpreter frame, owned by the VM so the GC can see its roots.
#[derive(Debug)]
pub(crate) struct Frame {
    pub locals: Vec<Value>,
    pub stack: Vec<Value>,
}

/// Cache key for compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CodeKey {
    method: MethodId,
    tier: Tier,
    osr: Option<u32>,
}

/// The virtual machine.
pub struct Vm<'p> {
    pub(crate) program: &'p BProgram,
    pub(crate) config: VmConfig,
    pub(crate) heap: Heap,
    /// Static fields per class.
    pub(crate) statics: Vec<Vec<Value>>,
    pub(crate) out: String,
    pub(crate) mute_depth: u32,
    pub(crate) profiles: Vec<MethodProfile>,
    /// Lifetime invocation counts (never reset; drives plans and events).
    pub(crate) invocations: Vec<u64>,
    compiled: HashMap<CodeKey, Rc<IrFunc>>,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) stats: ExecStats,
    pub(crate) fuel: u64,
    pub(crate) depth: usize,
    pub(crate) frames: Vec<Frame>,
    pub(crate) reg_frames: Vec<Vec<Value>>,
    /// Set when an injected bug corrupted the heap, so the GC crash can be
    /// attributed to the right bug.
    pub(crate) pending_gc_bug: Option<BugId>,
    /// Recycled `Vec<Value>` buffers for frame locals, operand stacks,
    /// and call arguments. A campaign performs hundreds of thousands of
    /// guest calls; reusing the two vectors behind every [`Frame`] keeps
    /// the call hot path allocation-free. Entries are always cleared
    /// before they are returned here (so they hold no GC roots).
    pub(crate) vec_pool: Vec<Vec<Value>>,
    /// Wall-clock watchdog deadline (`config.wall_clock_limit`, armed at
    /// construction time).
    wall_deadline: Option<std::time::Instant>,
    /// Burned-ops mark at which [`Vm::burn`] next leaves its fast path:
    /// the `min` of the watchdog's next clock sample and the chaos
    /// threshold, so the hot path pays one compare for both.
    next_side_check: u64,
    /// Burned-ops threshold for the chaos panic knob (`u64::MAX` = off).
    chaos_panic_at: u64,
    /// Content-addressed artifact cache shared with other VMs — across
    /// runs *and* across near-identical programs (see
    /// [`jit::SharedArtifactCache`]); `None` compiles everything per-run
    /// as before.
    code_cache: Option<Rc<jit::SharedArtifactCache>>,
    /// The program's content digests (present exactly when `code_cache`
    /// is), providing the unit digests that key shared compilations.
    digests: Option<Rc<cse_bytecode::ProgramDigests>>,
    /// Compilation-relevant configuration fingerprint, precomputed for
    /// cache keys.
    env_fp: u64,
    /// Rendered IR-verifier defect reports, in compilation order (see
    /// [`jit::verify`]).
    ir_verify: Vec<String>,
    /// Rendered translation-validation defect reports, in compilation
    /// order (see [`jit::tv`]).
    tv: Vec<String>,
    /// Pre-decoded instruction form of `program` (see
    /// [`cse_bytecode::decoded`]); decoded lazily on first use, or pulled
    /// from the attached [`ProgramArtifacts`] so every run sharing the
    /// shard decodes each distinct method body exactly once.
    decoded: Option<Rc<cse_bytecode::DecodedProgram>>,
}

/// Exact end-of-run warmth counters, used by plan-space pruning
/// (`cse_core::space`) to prove which (method, invocation) coordinates a
/// program can reach. Unlike the event trace these are never capped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmthProfile {
    /// Lifetime invocation count per method (indexed by `MethodId`).
    pub invocations: Vec<u64>,
    /// Back-edge counter per loop header, per method (indexed by
    /// `MethodId`, then by the method's loop-header index — the
    /// `c_1 .. c_M` of the paper's Definition 3.2).
    pub backedges: Vec<Vec<u64>>,
}

/// How many burned operations pass between wall-clock samples. Keeps
/// `Instant::now` off the per-instruction hot path.
const WATCHDOG_STRIDE: u64 = 1 << 18;

impl<'p> Vm<'p> {
    /// Creates a VM for a program.
    pub fn new(program: &'p BProgram, config: VmConfig) -> Vm<'p> {
        let statics = program
            .classes
            .iter()
            .map(|c| c.static_fields.iter().map(|f| Value::default_of(&f.ty)).collect())
            .collect();
        let profiles = program
            .methods
            .iter()
            .map(|m| MethodProfile {
                backedges: vec![0; m.loop_headers.len()],
                ..MethodProfile::default()
            })
            .collect();
        let fuel = config.fuel;
        let gc_interval = config.gc_interval;
        let max_objects = config.max_objects;
        let max_heap_bytes = config.max_heap_bytes;
        let wall_deadline = config.wall_clock_limit.map(|limit| std::time::Instant::now() + limit);
        let chaos_panic_at = config.chaos_panic_at_ops.unwrap_or(u64::MAX);
        let env_fp = jit::cache::SharedArtifactCache::env_fingerprint(&config);
        Vm {
            program,
            config,
            heap: Heap::new(gc_interval, max_objects).with_max_bytes(max_heap_bytes),
            statics,
            out: String::new(),
            mute_depth: 0,
            profiles,
            invocations: vec![0; program.methods.len()],
            compiled: HashMap::new(),
            events: Vec::new(),
            stats: ExecStats::default(),
            fuel,
            depth: 0,
            frames: Vec::new(),
            reg_frames: Vec::new(),
            pending_gc_bug: None,
            vec_pool: Vec::new(),
            wall_deadline,
            next_side_check: WATCHDOG_STRIDE.min(chaos_panic_at),
            chaos_panic_at,
            code_cache: None,
            digests: None,
            env_fp,
            ir_verify: Vec::new(),
            tv: Vec::new(),
            decoded: None,
        }
    }

    /// Attaches the program's binding to a campaign-level
    /// [`SharedArtifactCache`] (see [`SharedArtifactCache::attach`]):
    /// compiled code, decoded methods, and whole decoded programs are
    /// then shared with every other run — of this program or any
    /// near-identical one — on the same shard.
    pub fn with_artifacts(mut self, artifacts: &jit::ProgramArtifacts) -> Vm<'p> {
        debug_assert_eq!(
            artifacts.digests.methods.len(),
            self.program.methods.len(),
            "artifacts attached to a different program"
        );
        self.decoded = Some(artifacts.decoded.clone());
        self.digests = Some(artifacts.digests.clone());
        self.code_cache = Some(artifacts.cache.clone());
        self
    }

    /// The decoded instruction form, decoding on first use when no
    /// attached [`ProgramArtifacts`] supplied a shared copy.
    pub(crate) fn decoded(&mut self) -> Rc<cse_bytecode::DecodedProgram> {
        if let Some(decoded) = &self.decoded {
            return decoded.clone();
        }
        let decoded = Rc::new(cse_bytecode::DecodedProgram::decode(self.program));
        self.decoded = Some(decoded.clone());
        decoded
    }

    /// Runs `$clinit` (if present) and `main`, producing the final result.
    pub fn run(self) -> ExecutionResult {
        self.run_with_warmth().0
    }

    /// Like [`Vm::run`], but also reports the exact end-of-run
    /// [`WarmthProfile`] so callers (plan-space pruning) can reason about
    /// which coordinates the program reached.
    pub fn run_with_warmth(mut self) -> (ExecutionResult, WarmthProfile) {
        let mut uncaught = false;
        let mut outcome_override: Option<Outcome> = None;
        let entry_sequence: Vec<MethodId> =
            self.program.clinit.into_iter().chain([self.program.entry]).collect();
        for method in entry_sequence {
            match self.call_method(method, Vec::new()) {
                Ok(_) => {}
                Err(Exit::Exception { kind, code }) => {
                    let banner = format!("Exception in thread \"main\" {}", kind.describe(code));
                    let muted = std::mem::replace(&mut self.mute_depth, 0);
                    self.print_line(&banner);
                    self.mute_depth = muted;
                    uncaught = true;
                    break;
                }
                Err(Exit::Crash(info)) => {
                    outcome_override = Some(Outcome::Crash(info));
                    break;
                }
                Err(Exit::OutOfFuel) => {
                    outcome_override = Some(Outcome::Timeout);
                    break;
                }
                Err(Exit::OutOfMemory) => {
                    outcome_override = Some(Outcome::OutOfMemory);
                    break;
                }
                Err(Exit::BudgetExceeded(resource)) => {
                    outcome_override = Some(Outcome::BudgetExceeded(resource));
                    break;
                }
            }
        }
        self.stats.mute_depth_end = self.mute_depth;
        let warmth = WarmthProfile {
            invocations: self.invocations,
            backedges: self.profiles.iter_mut().map(|p| std::mem::take(&mut p.backedges)).collect(),
        };
        let result = ExecutionResult {
            output: self.out,
            outcome: outcome_override
                .unwrap_or(Outcome::Completed { uncaught_exception: uncaught }),
            events: self.events,
            stats: self.stats,
            ir_verify: self.ir_verify,
            tv: self.tv,
        };
        (result, warmth)
    }

    /// Convenience: build a VM, run the program, return the result.
    pub fn run_program(program: &BProgram, config: VmConfig) -> ExecutionResult {
        Vm::new(program, config).run()
    }

    /// Like [`Vm::run_program`], but sharing compiled code and decoded
    /// instructions with other runs through `artifacts` (see
    /// [`SharedArtifactCache`]).
    pub fn run_program_cached(
        program: &BProgram,
        config: VmConfig,
        artifacts: &jit::ProgramArtifacts,
    ) -> ExecutionResult {
        Vm::new(program, config).with_artifacts(artifacts).run()
    }

    /// Like [`Vm::run_program_cached`], but also reporting the run's
    /// [`WarmthProfile`] (used by plan-space pruning's profiling pre-run).
    pub fn run_program_warmth_cached(
        program: &BProgram,
        config: VmConfig,
        artifacts: &jit::ProgramArtifacts,
    ) -> (ExecutionResult, WarmthProfile) {
        Vm::new(program, config).with_artifacts(artifacts).run_with_warmth()
    }

    // ----- output ---------------------------------------------------------

    pub(crate) fn print_line(&mut self, text: &str) {
        if self.mute_depth == 0 {
            self.out.push_str(text);
            self.out.push('\n');
        }
    }

    pub(crate) fn print_value(&mut self, kind: PrintKind, value: &Value) {
        let text = match kind {
            PrintKind::Int => value.as_i().to_string(),
            PrintKind::Long => value.as_l().to_string(),
            PrintKind::Bool => if value.as_bool() { "true" } else { "false" }.to_string(),
            PrintKind::Str => match value {
                Value::S(s) => s.to_string(),
                _ => "null".to_string(),
            },
        };
        self.print_line(&text);
    }

    // ----- events / stats ---------------------------------------------------

    pub(crate) fn push_event(&mut self, event: TraceEvent) {
        if self.events.len() < self.config.max_events {
            self.events.push(event);
        }
    }

    #[inline(always)]
    pub(crate) fn burn(&mut self, amount: u64) -> Result<(), Exit> {
        if self.fuel < amount {
            self.fuel = 0;
            return Err(Exit::OutOfFuel);
        }
        self.fuel -= amount;
        let burned = self.config.fuel - self.fuel;
        if burned >= self.next_side_check {
            return self.burn_side_check(burned);
        }
        Ok(())
    }

    /// Slow half of [`Vm::burn`]: the chaos knob and the wall-clock
    /// watchdog. `next_side_check` is the `min` of both thresholds, so
    /// the per-instruction fast path pays a single compare and this runs
    /// once per `WATCHDOG_STRIDE` burned ops (or exactly at the chaos
    /// threshold).
    #[cold]
    #[inline(never)]
    fn burn_side_check(&mut self, burned: u64) -> Result<(), Exit> {
        if burned >= self.chaos_panic_at {
            panic!("chaos: injected VM panic after {burned} burned ops");
        }
        self.next_side_check = (burned + WATCHDOG_STRIDE).min(self.chaos_panic_at);
        if let Some(deadline) = self.wall_deadline {
            if std::time::Instant::now() >= deadline {
                self.stats.watchdog_fired = true;
                self.fuel = 0;
                return Err(Exit::OutOfFuel);
            }
        }
        Ok(())
    }

    // ----- heap helpers -------------------------------------------------------

    fn gc_roots(&self) -> Vec<Value> {
        let mut roots: Vec<Value> = Vec::new();
        for class in &self.statics {
            roots.extend(class.iter().cloned());
        }
        for frame in &self.frames {
            roots.extend(frame.locals.iter().cloned());
            roots.extend(frame.stack.iter().cloned());
        }
        for regs in &self.reg_frames {
            roots.extend(regs.iter().cloned());
        }
        roots
    }

    /// Runs a collection, surfacing corruption as a GC crash.
    pub(crate) fn run_gc(&mut self) -> Result<(), Exit> {
        let roots = self.gc_roots();
        let live_before = self.heap.live_objects();
        match self.heap.collect(&roots, self.program) {
            Ok(()) => {
                self.stats.gc_runs += 1;
                let live_after = self.heap.live_objects();
                self.push_event(TraceEvent::GcRun { live_before, live_after });
                Ok(())
            }
            Err(HeapError::Corruption { detail }) => {
                let bug = self.pending_gc_bug.take().unwrap_or(BugId::J9GcCorruptAllocSink);
                Err(Exit::Crash(CrashInfo {
                    bug,
                    component: Component::GarbageCollection,
                    kind: CrashKind::GcCorruption,
                    phase: CrashPhase::Gc,
                    detail,
                }))
            }
            Err(HeapError::OutOfMemory) => Err(Exit::OutOfMemory),
            Err(HeapError::ByteBudget) => Err(Exit::BudgetExceeded(exec::Resource::HeapBytes)),
        }
    }

    pub(crate) fn alloc(&mut self, obj: HeapObj) -> Result<u32, Exit> {
        // Byte budget: run a last-chance collection before declaring the
        // budget exhausted, mirroring a production VM's GC-before-OOM.
        // (The GC schedule stays deterministic: it depends only on the
        // allocation sequence, never on the host.)
        if self.heap.bytes_would_exceed(obj.byte_size()) {
            self.run_gc()?;
            if self.heap.bytes_would_exceed(obj.byte_size()) {
                return Err(Exit::BudgetExceeded(exec::Resource::HeapBytes));
            }
        }
        let r = match self.heap.alloc(obj) {
            Ok(r) => r,
            Err(HeapError::OutOfMemory) => return Err(Exit::OutOfMemory),
            Err(HeapError::ByteBudget) => {
                return Err(Exit::BudgetExceeded(exec::Resource::HeapBytes))
            }
            Err(HeapError::Corruption { .. }) => unreachable!("alloc does not validate"),
        };
        if self.heap.gc_due() {
            // The freshly allocated object must survive the collection even
            // though no frame refers to it yet.
            self.frames.push(Frame { locals: vec![Value::Ref(r)], stack: Vec::new() });
            let gc = self.run_gc();
            self.frames.pop();
            gc?;
        }
        Ok(r)
    }

    pub(crate) fn alloc_object(&mut self, class: ClassId) -> Result<Value, Exit> {
        let fields = self.program.classes[class.0 as usize]
            .inst_fields
            .iter()
            .map(|f| Value::default_of(&f.ty))
            .collect();
        let r = self.alloc(HeapObj::Obj { class, fields })?;
        Ok(Value::Ref(r))
    }

    pub(crate) fn alloc_array(&mut self, kind: ArrKind, len: i32) -> Result<Value, Exit> {
        if len < 0 {
            return Err(Exit::Exception { kind: ExcKind::NegativeArraySize, code: len });
        }
        let r = self.alloc(HeapObj::Arr(ArrData::new(kind, len as usize)))?;
        Ok(Value::Ref(r))
    }

    /// Allocates a rectangular multi-dimensional array: `dims.len()` nested
    /// levels; the innermost level has element kind `kind`.
    ///
    /// Children allocated before the spine exists are parked in a scratch
    /// frame so an allocation-triggered GC cannot sweep them mid-build.
    pub(crate) fn alloc_multi(&mut self, kind: ArrKind, dims: &[i32]) -> Result<Value, Exit> {
        self.frames.push(Frame { locals: Vec::new(), stack: Vec::new() });
        let scratch = self.frames.len() - 1;
        let result = self.alloc_multi_rooted(kind, dims, scratch);
        self.frames.remove(scratch);
        result
    }

    fn alloc_multi_rooted(
        &mut self,
        kind: ArrKind,
        dims: &[i32],
        scratch: usize,
    ) -> Result<Value, Exit> {
        let (&len, rest) = dims.split_first().expect("multiarray needs dims");
        if rest.is_empty() {
            return self.alloc_array(kind, len);
        }
        if len < 0 {
            return Err(Exit::Exception { kind: ExcKind::NegativeArraySize, code: len });
        }
        let mut elems: Vec<Option<u32>> = Vec::with_capacity(len as usize);
        for _ in 0..len {
            match self.alloc_multi_rooted(kind, rest, scratch)? {
                Value::Ref(r) => {
                    elems.push(Some(r));
                    self.frames[scratch].locals.push(Value::Ref(r));
                }
                _ => unreachable!("alloc_multi returns refs"),
            }
        }
        let r = self.alloc(HeapObj::Arr(ArrData::Ref(elems)))?;
        Ok(Value::Ref(r))
    }

    fn deref(&self, value: &Value) -> Result<u32, Exit> {
        match value {
            Value::Ref(r) => Ok(*r),
            Value::Null => Err(Exit::Exception { kind: ExcKind::NullPointer, code: 0 }),
            other => panic!("expected reference, found {other:?}"),
        }
    }

    pub(crate) fn arr_len(&self, arr: &Value) -> Result<i32, Exit> {
        let r = self.deref(arr)?;
        match self.heap.get(r) {
            Some(HeapObj::Arr(data)) => Ok(data.len() as i32),
            other => panic!("expected array, found {other:?}"),
        }
    }

    pub(crate) fn arr_load(&self, arr: &Value, idx: i32) -> Result<Value, Exit> {
        let r = self.deref(arr)?;
        let data = match self.heap.get(r) {
            Some(HeapObj::Arr(data)) => data,
            other => panic!("expected array, found {other:?}"),
        };
        let len = data.len();
        if idx < 0 || idx as usize >= len {
            return Err(Exit::Exception { kind: ExcKind::IndexOutOfBounds, code: idx });
        }
        let i = idx as usize;
        Ok(match data {
            ArrData::I32(v) => Value::I(v[i]),
            ArrData::I64(v) => Value::L(v[i]),
            ArrData::I8(v) => Value::I(v[i] as i32),
            ArrData::Bool(v) => Value::I(i32::from(v[i])),
            ArrData::Str(v) => v[i].clone().map(Value::S).unwrap_or(Value::Null),
            ArrData::Ref(v) => v[i].map(Value::Ref).unwrap_or(Value::Null),
        })
    }

    pub(crate) fn arr_store(&mut self, arr: &Value, idx: i32, value: Value) -> Result<(), Exit> {
        let r = self.deref(arr)?;
        let data = match self.heap.get_mut(r) {
            Some(HeapObj::Arr(data)) => data,
            other => panic!("expected array, found {other:?}"),
        };
        let len = data.len();
        if idx < 0 || idx as usize >= len {
            return Err(Exit::Exception { kind: ExcKind::IndexOutOfBounds, code: idx });
        }
        let i = idx as usize;
        match data {
            ArrData::I32(v) => v[i] = value.as_i(),
            ArrData::I64(v) => v[i] = value.as_l(),
            ArrData::I8(v) => v[i] = value.as_i() as i8,
            ArrData::Bool(v) => v[i] = value.as_bool(),
            ArrData::Str(v) => {
                v[i] = match value {
                    Value::S(s) => Some(s),
                    _ => None,
                }
            }
            ArrData::Ref(v) => {
                v[i] = match value {
                    Value::Ref(r) => Some(r),
                    _ => None,
                }
            }
        }
        Ok(())
    }

    pub(crate) fn field_get(&self, obj: &Value, field: u32) -> Result<Value, Exit> {
        let r = self.deref(obj)?;
        match self.heap.get(r) {
            Some(HeapObj::Obj { fields, .. }) => Ok(fields[field as usize].clone()),
            other => panic!("expected object, found {other:?}"),
        }
    }

    pub(crate) fn field_put(&mut self, obj: &Value, field: u32, value: Value) -> Result<(), Exit> {
        let r = self.deref(obj)?;
        match self.heap.get_mut(r) {
            Some(HeapObj::Obj { fields, .. }) => {
                fields[field as usize] = value;
                Ok(())
            }
            other => panic!("expected object, found {other:?}"),
        }
    }

    pub(crate) fn concat(&self, a: &Value, b: &Value) -> Value {
        fn text(v: &Value) -> &str {
            v.as_s().map_or("null", |s| s.as_str())
        }
        Value::str(format!("{}{}", text(a), text(b)))
    }

    // ----- dispatch ------------------------------------------------------------

    /// Calls a method: decides the execution mode (forced plan or
    /// profile-driven tiering), compiling as needed, and runs it.
    pub(crate) fn call_method(
        &mut self,
        id: MethodId,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Exit> {
        // Hard harness budget first: the interpreter recurses on the host
        // stack, so this must end the run before `max_call_depth` raised
        // past it can exhaust real stack headroom. Not a guest exception —
        // a `catch` must never observe it.
        if self.depth >= self.config.stack_limit {
            return Err(Exit::BudgetExceeded(exec::Resource::StackDepth));
        }
        if self.depth >= self.config.max_call_depth {
            return Err(Exit::Exception { kind: ExcKind::StackOverflow, code: 0 });
        }
        self.burn(1)?;
        self.stats.calls += 1;
        let inv_idx = self.invocations[id.0 as usize];
        self.invocations[id.0 as usize] += 1;

        // Forced plan (Definition 3.3's `LVM(P, φ)`).
        if let Some(plan) = &self.config.plan {
            if let Some(mode) = plan.mode_for(id, inv_idx) {
                return match mode {
                    ExecMode::Interpret => {
                        self.record_entry(id, Tier::INTERP, inv_idx);
                        self.enter_interpreter(id, args)
                    }
                    ExecMode::Compiled(tier) => {
                        let tier = Tier(tier.0.min(self.config.tiers.len() as u8).max(1));
                        let func =
                            self.ensure_compiled(id, tier, None, false, CompileReason::Forced)?;
                        self.record_entry(id, tier, inv_idx);
                        self.execute_compiled(id, func, args)
                    }
                };
            }
        }

        // Profile-driven tiering.
        if self.config.jit_enabled {
            let top = self.config.tiers.len() as u8;
            let (current_tier, banned, invocations) = {
                let prof = &mut self.profiles[id.0 as usize];
                prof.invocations += 1;
                (prof.tier, prof.compile_banned, prof.invocations)
            };
            let mut tier = current_tier;
            if !banned {
                for t in (current_tier.0 + 1)..=top {
                    if invocations >= self.config.tiers[(t - 1) as usize].invocations {
                        tier = Tier(t);
                    }
                }
                if tier != current_tier {
                    self.ensure_compiled(id, tier, None, true, CompileReason::Invocations)?;
                    self.profiles[id.0 as usize].tier = tier;
                }
            }
            if tier.0 > 0 {
                let func = self.compiled_code(id, tier, None).expect("tiered code compiled above");
                self.record_entry(id, tier, inv_idx);
                return self.execute_compiled(id, func, args);
            }
        }
        self.record_entry(id, Tier::INTERP, inv_idx);
        self.enter_interpreter(id, args)
    }

    /// Queries the fault injector at an *execution-time* trigger site,
    /// recording a firing in `stats.fired_bugs` (compile-time sites go
    /// through [`jit::CompileCtx::active`] instead). Every runtime
    /// trigger site must use this, not `config.faults.active` directly,
    /// so the fired mask stays complete.
    pub(crate) fn fault_fired(&mut self, bug: BugId) -> bool {
        let hit = self.config.faults.active(bug);
        if hit {
            self.stats.fired_bugs |= 1u64 << (bug as u64);
        }
        hit
    }

    fn record_entry(&mut self, id: MethodId, tier: Tier, invocation: u64) {
        if self.config.record_method_entries {
            self.push_event(TraceEvent::MethodEntry { method: id, tier, invocation });
        }
    }

    fn enter_interpreter(&mut self, id: MethodId, args: Vec<Value>) -> Result<Option<Value>, Exit> {
        let method = self.program.method(id);
        let mut locals = args;
        locals.resize(method.num_locals as usize, Value::Null);
        self.interpret(id, locals, 0)
    }

    pub(crate) fn compiled_code(
        &self,
        method: MethodId,
        tier: Tier,
        osr: Option<u32>,
    ) -> Option<Rc<IrFunc>> {
        self.compiled.get(&CodeKey { method, tier, osr }).cloned()
    }

    /// Content digests for coverage features: reuses the digests the
    /// attached artifact cache already computed, or computes (and
    /// caches) them on first use. Caching them here never enables the
    /// shared code cache — cache probes require `code_cache` *and*
    /// `digests` to both be present.
    fn coverage_digests(&mut self) -> Rc<cse_bytecode::ProgramDigests> {
        if let Some(digests) = &self.digests {
            return digests.clone();
        }
        let digests = Rc::new(cse_bytecode::ProgramDigests::compute(self.program));
        self.digests = Some(digests.clone());
        digests
    }

    /// Emits the coverage features of one (method, tier) compilation:
    /// the compile (or OSR entry) itself, every pipeline pass that ran
    /// over it, and every inline edge the compiled body embeds. Called
    /// for cross-run cache hits too — a hit replays the original
    /// compilation, passes and all.
    fn record_compile_coverage(&mut self, method: MethodId, tier: Tier, osr: bool, func: &IrFunc) {
        let digests = self.coverage_digests();
        let key = digests.methods[method.0 as usize].key();
        self.stats.coverage.insert(coverage::feat_compile(key, tier.0, osr));
        let optimizing = tier.0 >= 2 || self.config.kind == VmKind::ArtLike;
        for (name, _) in jit::passes::pipeline(self.config.kind, optimizing) {
            self.stats.coverage.insert(coverage::feat_pass(key, tier.0, name));
        }
        for frame in func.frames.iter().skip(1) {
            let callee = digests.methods[frame.method.0 as usize].key();
            self.stats.coverage.insert(coverage::feat_inline(key, callee, tier.0));
        }
    }

    /// Compiles (or fetches cached) code for a method at a tier.
    pub(crate) fn ensure_compiled(
        &mut self,
        method: MethodId,
        tier: Tier,
        osr: Option<u32>,
        speculate: bool,
        reason: CompileReason,
    ) -> Result<Rc<IrFunc>, Exit> {
        let key = CodeKey { method, tier, osr };
        if let Some(func) = self.compiled.get(&key) {
            return Ok(func.clone());
        }
        let has_osr_code = self.compiled.keys().any(|k| k.method == method && k.osr.is_some());
        // Cross-run cache probe: every compile-relevant input is part of
        // the key (see the soundness notes on `jit::cache`), so a hit is
        // indistinguishable from compiling — it still records the event
        // and counts as a compilation, it only skips the work.
        let shared = self.code_cache.clone();
        let shared_key = match (&shared, &self.digests) {
            (Some(_), Some(digests)) => Some(jit::cache::ArtifactKey {
                unit: digests.units[method.0 as usize],
                tier,
                osr,
                speculate,
                has_osr_code,
                profile_fp: self.profiles[method.0 as usize].compile_fingerprint(),
                env_fp: self.env_fp,
            }),
            _ => None,
        };
        if let (Some(cache), Some(k)) = (&shared, &shared_key) {
            if let Some(entry) = cache.lookup(k) {
                // Replay every observable side effect of the original
                // compilation, so a hit is indistinguishable from
                // compiling no matter which program warmed the shard.
                if !entry.defects.is_empty() {
                    self.stats.ir_verify_defects += entry.defects.len() as u32;
                    self.ir_verify.extend(entry.defects.iter().cloned());
                }
                if !entry.tv.is_empty() {
                    self.stats.tv_defects += entry.tv.len() as u32;
                    self.tv.extend(entry.tv.iter().cloned());
                }
                self.stats.fired_bugs |= entry.fired;
                return match entry.result {
                    Ok(func) => {
                        self.stats.code_cache_hits += 1;
                        self.compiled.insert(key, func.clone());
                        match reason {
                            CompileReason::Osr { .. } => self.stats.osr_compilations += 1,
                            _ => self.stats.compilations += 1,
                        }
                        self.push_event(TraceEvent::Compiled {
                            method,
                            tier,
                            reason,
                            invocation: self.invocations[method.0 as usize],
                        });
                        if self.config.coverage {
                            self.record_compile_coverage(method, tier, osr.is_some(), &func);
                        }
                        Ok(func)
                    }
                    Err(info) => Err(Exit::Crash(info)),
                };
            }
        }
        let ctx = jit::CompileCtx {
            program: self.program,
            profiles: &self.profiles,
            faults: &self.config.faults,
            kind: self.config.kind,
            tier,
            speculate,
            inline_limit: self.config.inline_limit,
            has_osr_code,
            verify: self.config.verify_ir,
            tv: self.config.tv,
            fired: std::cell::Cell::new(0),
        };
        // Verifier and translation-validator defects are harvested whether
        // or not the compile succeeds: IR corrupted before an injected
        // compile-time crash is still an observation. Likewise the
        // compile's fired-bug mask.
        let mut defects = Vec::new();
        let mut tv_defects = Vec::new();
        let compiled = jit::compile(&ctx, method, osr, &mut defects, &mut tv_defects);
        let fired = ctx.fired.get();
        self.stats.fired_bugs |= fired;
        let rendered: Vec<String> = defects.iter().map(|d| d.to_string()).collect();
        if !rendered.is_empty() {
            self.stats.ir_verify_defects += rendered.len() as u32;
            self.ir_verify.extend(rendered.iter().cloned());
        }
        let rendered = Rc::new(rendered);
        let rendered_tv: Vec<String> = tv_defects.iter().map(|d| d.to_string()).collect();
        if !rendered_tv.is_empty() {
            self.stats.tv_defects += rendered_tv.len() as u32;
            self.tv.extend(rendered_tv.iter().cloned());
        }
        let rendered_tv = Rc::new(rendered_tv);
        match compiled {
            Ok(func) => {
                if std::env::var_os("CSE_DUMP_IR").is_some() {
                    eprintln!(
                        "=== compiled m{} {:?} osr={osr:?} ===\n{}",
                        method.0,
                        tier,
                        func.pretty()
                    );
                }
                let func = Rc::new(func);
                if let (Some(cache), Some(k)) = (&shared, shared_key) {
                    cache.insert(
                        k,
                        jit::cache::CachedCompile {
                            defects: rendered,
                            tv: rendered_tv,
                            fired,
                            result: Ok(func.clone()),
                        },
                    );
                }
                self.compiled.insert(key, func.clone());
                match reason {
                    CompileReason::Osr { .. } => self.stats.osr_compilations += 1,
                    _ => self.stats.compilations += 1,
                }
                self.push_event(TraceEvent::Compiled {
                    method,
                    tier,
                    reason,
                    invocation: self.invocations[method.0 as usize],
                });
                if self.config.coverage {
                    self.record_compile_coverage(method, tier, osr.is_some(), &func);
                }
                Ok(func)
            }
            Err(jit::CompileFail::Crash(info)) => {
                if let (Some(cache), Some(k)) = (&shared, shared_key) {
                    cache.insert(
                        k,
                        jit::cache::CachedCompile {
                            defects: rendered,
                            tv: rendered_tv,
                            fired,
                            result: Err(info.clone()),
                        },
                    );
                }
                Err(Exit::Crash(info))
            }
            Err(jit::CompileFail::OsrUnsupported) => {
                // Callers must check OSR feasibility first; reaching this is
                // a VM bug, not a program behavior.
                panic!("OSR compilation requested at an unsupported header")
            }
        }
    }

    /// Runs compiled code; handles de-optimization by falling back to the
    /// interpreter at the trap's bytecode pc.
    pub(crate) fn execute_compiled(
        &mut self,
        id: MethodId,
        func: Rc<IrFunc>,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Exit> {
        let method = self.program.method(id);
        let mut entry = args;
        entry.resize(method.num_locals as usize, Value::Null);
        match jit::run_ir(self, &func, entry)? {
            IrOutcome::Return(value) => Ok(value),
            IrOutcome::Deopt { bc_pc, locals, reason } => {
                self.deoptimize(id, func.tier, bc_pc, reason);
                self.interpret(id, locals, bc_pc)
            }
            IrOutcome::TierUp { bc_pc, locals } => {
                // Method-entry bodies never request tier-up (only OSR
                // bodies do), but resuming interpretation is always sound.
                self.interpret(id, locals, bc_pc)
            }
        }
    }

    /// Records a de-optimization: cools the method down (Definition 3.2)
    /// and invalidates its compiled code so it re-warms from the
    /// interpreter.
    pub(crate) fn deoptimize(&mut self, id: MethodId, tier: Tier, bc_pc: u32, reason: DeoptReason) {
        self.stats.deopts += 1;
        self.push_event(TraceEvent::Deopt {
            method: id,
            tier,
            bc_pc,
            reason,
            invocation: self.invocations[id.0 as usize],
        });
        if self.config.coverage {
            let key = self.coverage_digests().methods[id.0 as usize].key();
            self.stats.coverage.insert(coverage::feat_deopt(
                key,
                tier.0,
                bc_pc,
                &format!("{reason:?}"),
            ));
        }
        let prof = &mut self.profiles[id.0 as usize];
        prof.no_speculate.insert(bc_pc);
        prof.cool_down(self.config.max_deopts_per_method);
        self.compiled.retain(|k, _| k.method != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str, config: VmConfig) -> ExecutionResult {
        let program = cse_lang::parse_and_check(src).unwrap();
        let compiled = cse_bytecode::compile(&program).unwrap();
        cse_bytecode::verify::verify_program(&compiled).unwrap();
        Vm::run_program(&compiled, config)
    }

    fn interp_out(src: &str) -> String {
        let r = run_src(src, VmConfig::interpreter_only(VmKind::HotSpotLike));
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
        r.output
    }

    #[test]
    fn arithmetic_and_printing() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    println(2 + 3 * 4);
                    println(7 / 2);
                    println(-7 / 2);
                    println(7 % -3);
                    println(2147483647 + 1);
                    println(-2147483648 - 1);
                    println(9223372036854775807L + 1L);
                    println(1 << 33);
                    println(-8 >> 1);
                    println(-8 >>> 28);
                    println(true);
                    println(!true);
                    println("s=" + 1 + true);
                }
            }
            "#,
        );
        assert_eq!(
            out,
            "14\n3\n-3\n1\n-2147483648\n2147483647\n-9223372036854775808\n2\n-4\n15\ntrue\nfalse\ns=1true\n"
        );
    }

    #[test]
    fn byte_semantics_wrap() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    byte b = 127;
                    b += 1;
                    println(b);
                    b = (byte) 300;
                    println(b);
                    byte c = -128;
                    c--;
                    println(c);
                }
            }
            "#,
        );
        assert_eq!(out, "-128\n44\n127\n");
    }

    #[test]
    fn exceptions_and_handlers() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    try { println(1 / 0); } catch { println("div"); }
                    int[] a = new int[2];
                    try { a[5] = 1; } catch { println("oob"); } finally { println("fin"); }
                    try { throw 42; } catch { println("user"); }
                    T t = null;
                    try { t.f(); } catch { println("npe"); }
                }
                void f() { }
            }
            "#,
        );
        assert_eq!(out, "div\noob\nfin\nuser\nnpe\n");
    }

    #[test]
    fn uncaught_exception_banner() {
        let r = run_src(
            "class T { static void main() { int[] a = new int[1]; println(a[3]); } }",
            VmConfig::interpreter_only(VmKind::HotSpotLike),
        );
        assert_eq!(r.outcome, Outcome::Completed { uncaught_exception: true });
        assert!(r.output.contains("ArrayIndexOutOfBoundsException: 3"));
    }

    #[test]
    fn static_and_instance_state() {
        let out = interp_out(
            r#"
            class P { int v = 10; static int s = 5; int bump() { v++; return v; } }
            class T {
                static void main() {
                    P a = new P();
                    P b = new P();
                    a.bump(); a.bump();
                    println(a.v);
                    println(b.v);
                    P.s += 3;
                    println(P.s);
                    println(a == a);
                    println(a == b);
                    println(b == null);
                }
            }
            "#,
        );
        assert_eq!(out, "12\n10\n8\ntrue\nfalse\nfalse\n");
    }

    #[test]
    fn loops_and_switches() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    int acc = 0;
                    for (int i = 0; i < 10; i++) {
                        switch (i % 4) {
                            case 0: acc += 1;
                            case 1: acc += 10; break;
                            case 2: acc += 100; break;
                            default: acc += 1000;
                        }
                    }
                    println(acc);
                    int j = 0;
                    do { j++; } while (j < 5);
                    println(j);
                    int[] k = new int[] { 3, 1, 4 };
                    int s = 0;
                    for (int m : k) { s += m; }
                    println(s);
                }
            }
            "#,
        );
        // i%4 cycles 0,1,2,3: case 0 falls through into case 1.
        assert_eq!(out, "2263\n5\n8\n");
    }

    #[test]
    fn recursion_and_stack_overflow() {
        let out = interp_out(
            r#"
            class T {
                static int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
                static void main() { println(fib(15)); }
            }
            "#,
        );
        assert_eq!(out, "610\n");
        let r = run_src(
            r#"
            class T {
                static int inf(int n) { return inf(n + 1); }
                static void main() {
                    try { println(inf(0)); } catch { println("so"); }
                }
            }
            "#,
            VmConfig::interpreter_only(VmKind::HotSpotLike),
        );
        assert_eq!(r.output, "so\n");
    }

    #[test]
    fn mute_unmute_silences_output() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    println(1);
                    __mute();
                    println(2);
                    __unmute();
                    println(3);
                }
            }
            "#,
        );
        assert_eq!(out, "1\n3\n");
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut config = VmConfig::interpreter_only(VmKind::HotSpotLike);
        config.fuel = 10_000;
        let r = run_src("class T { static void main() { while (true) { } } }", config);
        assert_eq!(r.outcome, Outcome::Timeout);
    }

    #[test]
    fn gc_runs_and_preserves_objects() {
        let mut config = VmConfig::interpreter_only(VmKind::HotSpotLike);
        config.gc_interval = 10;
        let r = run_src(
            r#"
            class P { int v = 7; }
            class T {
                static void main() {
                    P keep = new P();
                    for (int i = 0; i < 100; i++) {
                        P temp = new P();
                        temp.v = i;
                    }
                    println(keep.v);
                }
            }
            "#,
            config,
        );
        assert_eq!(r.output, "7\n");
        assert!(r.stats.gc_runs > 0);
    }

    #[test]
    fn strings_and_null_strings() {
        let out = interp_out(
            r#"
            class T {
                static String id(String s) { return s; }
                static void main() {
                    String s = null;
                    println("x" + s);
                    println(id(null) == null);
                    String[] a = new String[2];
                    a[0] = "hi";
                    println(a[0] + a[1]);
                }
            }
            "#,
        );
        assert_eq!(out, "xnull\ntrue\nhinull\n");
    }

    #[test]
    fn multiarray_children_survive_mid_allocation_gc() {
        // Regression: children of a multi-dimensional allocation are not
        // yet referenced by any frame while the spine is being built; a
        // collection triggered between child allocations must not sweep
        // them (this once produced self-referential arrays).
        let mut config = VmConfig::interpreter_only(VmKind::HotSpotLike);
        config.gc_interval = 1;
        let r = run_src(
            r#"
            class T {
                static void main() {
                    int total = 0;
                    for (int i = 0; i < 20; i++) {
                        int[][] m = new int[3][4];
                        m[0][0] = i;
                        m[2][3] = 7;
                        total += m[0][0] + m[2][3];
                    }
                    println(total);
                }
            }
            "#,
            config,
        );
        assert_eq!(r.output, "330\n");
    }

    #[test]
    fn multidim_arrays_work() {
        let out = interp_out(
            r#"
            class T {
                static void main() {
                    int[][] m = new int[3][4];
                    m[2][3] = 9;
                    println(m[2][3] + m[0][0] + m.length + m[1].length);
                    long[][] n = new long[2][];
                    println(n[0] == null);
                    n[0] = new long[1];
                    n[0][0] = 5L;
                    println(n[0][0]);
                }
            }
            "#,
        );
        assert_eq!(out, "16\ntrue\n5\n");
    }
}
