//! Substrate-soundness tests: with NO injected bugs, every execution mode
//! (interpreter, tiered JIT with speculation/OSR/deopt, force-compile-all)
//! of every VM profile must produce identical observable behavior.
//!
//! This is the load-bearing guarantee behind the whole reproduction: the
//! cross-validation oracle of CSE (§3.2) is only sound if JIT-compilation
//! choices never change program semantics on a correct VM.

use cse_vm::{ExecutionResult, Outcome, Vm, VmConfig, VmKind};

fn run(src: &str, config: VmConfig) -> ExecutionResult {
    let program = cse_lang::parse_and_check(src).unwrap();
    let compiled = cse_bytecode::compile(&program).unwrap();
    cse_bytecode::verify::verify_program(&compiled).unwrap();
    Vm::run_program(&compiled, config)
}

/// Runs `src` under every engine/profile combination and asserts that the
/// observable behavior matches the interpreter's.
fn assert_all_modes_agree(src: &str) -> ExecutionResult {
    let reference = run(src, VmConfig::interpreter_only(VmKind::HotSpotLike));
    assert!(
        matches!(reference.outcome, Outcome::Completed { .. }),
        "reference run must complete: {:?}",
        reference.outcome
    );
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        let tiered = run(src, VmConfig::correct(kind));
        assert_eq!(
            tiered.observable(),
            reference.observable(),
            "tiered {kind} diverged from the interpreter"
        );
        let forced = run(src, VmConfig::force_compile_all(kind).with_faults(Default::default()));
        assert_eq!(
            forced.observable(),
            reference.observable(),
            "force-compile-all {kind} diverged from the interpreter"
        );
    }
    reference
}

#[test]
fn hot_arithmetic_loop_compiles_and_agrees() {
    let result = assert_all_modes_agree(
        r#"
        class T {
            static int mix(int x) {
                return (x * 31 + 17) ^ (x >>> 3);
            }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 5000; i++) {
                    acc = acc + mix(i) % 1000;
                }
                println(acc);
            }
        }
        "#,
    );
    assert!(matches!(result.outcome, Outcome::Completed { uncaught_exception: false }));
    // Sanity: the tiered HotSpot run really compiled something.
    let tiered = run(
        r#"
        class T {
            static int mix(int x) {
                return (x * 31 + 17) ^ (x >>> 3);
            }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 5000; i++) {
                    acc = acc + mix(i) % 1000;
                }
                println(acc);
            }
        }
        "#,
        VmConfig::correct(VmKind::HotSpotLike),
    );
    assert!(tiered.stats.compilations + tiered.stats.osr_compilations > 0);
    assert!(tiered.stats.jit_ops > 0, "compiled code must actually run");
}

#[test]
fn osr_compiles_long_running_loop() {
    let src = r#"
        class T {
            static void main() {
                long acc = 0L;
                int i = 0;
                while (i < 20000) {
                    acc += i % 7;
                    i++;
                }
                println(acc);
            }
        }
    "#;
    assert_all_modes_agree(src);
    let tiered = run(src, VmConfig::correct(VmKind::HotSpotLike));
    assert!(tiered.stats.osr_compilations > 0, "main's loop must OSR-compile");
}

#[test]
fn speculation_and_deopt_agree() {
    // The flag flips exactly once after the loop is hot: tier-2 code
    // speculates on the never-taken branch and must deopt correctly.
    let src = r#"
        class T {
            static boolean flag = false;
            static int work(int i) {
                if (flag) {
                    return i * 100;
                }
                return i + 1;
            }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 6000; i++) {
                    acc += work(i) & 1023;
                }
                flag = true;
                acc += work(7);
                println(acc);
            }
        }
    "#;
    assert_all_modes_agree(src);
    let tiered = run(src, VmConfig::correct(VmKind::HotSpotLike));
    assert!(tiered.stats.deopts > 0, "the flipped flag must hit an uncommon trap");
}

#[test]
fn switch_speculation_and_deopt_agree() {
    let src = r#"
        class T {
            static int pick(int x) {
                switch (x % 8) {
                    case 0: return 1;
                    case 1: return 2;
                    case 2: return 3;
                    case 7: return 99;
                    default: return 0;
                }
            }
            static void main() {
                int acc = 0;
                // x % 8 stays in 0..=2 while warm (x = i * 8 + i % 3).
                for (int i = 0; i < 6000; i++) {
                    acc += pick(i * 8 + i % 3);
                }
                // Now hit the cold arm.
                acc += pick(7);
                println(acc);
            }
        }
    "#;
    assert_all_modes_agree(src);
}

#[test]
fn exceptions_inside_compiled_code_agree() {
    assert_all_modes_agree(
        r#"
        class T {
            static int risky(int i) {
                try {
                    return 1000 / (i % 100);
                } catch {
                    return -1;
                }
            }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 8000; i++) {
                    acc += risky(i);
                }
                println(acc);
            }
        }
        "#,
    );
}

#[test]
fn finally_inside_compiled_code_agrees() {
    assert_all_modes_agree(
        r#"
        class T {
            static int acc;
            static int step(int i) {
                int r = 0;
                try {
                    r = 100 / (i % 50);
                } catch {
                    r = 7;
                } finally {
                    T.acc += 1;
                }
                return r;
            }
            static void main() {
                int total = 0;
                for (int i = 0; i < 6000; i++) {
                    total += step(i);
                }
                println(total);
                println(T.acc);
            }
        }
        "#,
    );
}

#[test]
fn inlined_calls_agree() {
    assert_all_modes_agree(
        r#"
        class T {
            static int tiny(int x) { return x * 3 + 1; }
            static int wrap(int x) { return tiny(x) - tiny(x - 1); }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 7000; i++) {
                    acc += wrap(i);
                }
                println(acc);
            }
        }
        "#,
    );
}

#[test]
fn instance_state_and_gc_under_jit_agree() {
    assert_all_modes_agree(
        r#"
        class Node { int v; Node next; }
        class T {
            static void main() {
                Node head = null;
                int sum = 0;
                for (int i = 0; i < 4000; i++) {
                    Node n = new Node();
                    n.v = i % 97;
                    n.next = head;
                    if (i % 3 == 0) {
                        head = n;
                    }
                    sum += n.v;
                }
                int count = 0;
                while (head != null) {
                    count++;
                    head = head.next;
                }
                println(sum);
                println(count);
            }
        }
        "#,
    );
}

#[test]
fn arrays_and_strings_under_jit_agree() {
    assert_all_modes_agree(
        r#"
        class T {
            static void main() {
                int[] data = new int[64];
                long checksum = 0L;
                for (int i = 0; i < 9000; i++) {
                    data[i % 64] = data[(i + 7) % 64] * 3 + i;
                    checksum += data[i % 64];
                }
                byte b = 0;
                for (int i = 0; i < 3000; i++) {
                    b += 7;
                }
                println("sum=" + checksum + " b=" + b);
            }
        }
        "#,
    );
}

#[test]
fn byte_wrapping_under_jit_agrees() {
    assert_all_modes_agree(
        r#"
        class T {
            static byte acc;
            static void main() {
                for (int i = 0; i < 10000; i++) {
                    T.acc += 3;
                }
                println(T.acc);
            }
        }
        "#,
    );
}

#[test]
fn nested_loops_with_switches_agree() {
    // The Figure-2-like shape: nested loops, a switch, byte accumulation.
    assert_all_modes_agree(
        r#"
        class T {
            byte l = 0;
            void g(int[] k) {
                for (int z = 0; z < k.length; z++) {
                    int m = k[z];
                    switch ((m >>> 1) % 10 + 36) {
                        case 36:
                            for (int w = -2967; w < 4342; w += 4) { }
                            l += 2;
                        case 40: break;
                        case 41: k[1] = 9;
                    }
                }
            }
            static void main() {
                T t = new T();
                int[] k = new int[] { 72, 81, 72, 83 };
                for (int i = 0; i < 4; i++) {
                    t.g(k);
                }
                println(t.l);
            }
        }
        "#,
    );
}

#[test]
fn recursion_under_jit_agrees() {
    assert_all_modes_agree(
        r#"
        class T {
            static int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            static void main() {
                println(fib(22));
            }
        }
        "#,
    );
}

#[test]
fn uncaught_exception_in_hot_code_agrees() {
    let src = r#"
        class T {
            static int poke(int i) {
                int[] a = new int[4];
                return a[i % 5];
            }
            static void main() {
                int acc = 0;
                for (int i = 0; i < 9000; i++) {
                    acc += poke(i % 4);
                }
                println(acc);
                println(poke(4));
            }
        }
    "#;
    let reference = run(src, VmConfig::interpreter_only(VmKind::HotSpotLike));
    assert_eq!(reference.outcome, Outcome::Completed { uncaught_exception: true });
    assert_all_modes_agree(src);
}

#[test]
fn mute_regions_in_hot_code_agree() {
    assert_all_modes_agree(
        r#"
        class T {
            static void noisy(int i) {
                println(i);
            }
            static void main() {
                for (int i = 0; i < 5000; i++) {
                    __mute();
                    noisy(i);
                    __unmute();
                }
                println("done");
            }
        }
        "#,
    );
}
