//! Deterministic resource budgets: exhausting fuel, heap bytes, or the
//! hard stack budget must end a run gracefully — a first-class
//! `Outcome`, never a panic, a host stack overflow, or a hang — and the
//! verdict must be bit-identical across repeated runs.

use cse_vm::{Outcome, Resource, Vm, VmConfig, VmKind};

fn compile(source: &str) -> cse_bytecode::BProgram {
    let program = cse_lang::parse_and_check(source).expect("test program compiles");
    cse_bytecode::compile(&program).expect("test program lowers")
}

const DEEP_RECURSION: &str = r#"
class T {
    static int down(int n) {
        if (n <= 0) { return 0; }
        return 1 + T.down(n - 1);
    }
    static void main() {
        println(T.down(1000000));
    }
}
"#;

const HEAP_HOG: &str = r#"
class Node { int[] payload; Node next; }
class T {
    static void main() {
        Node head = null;
        for (int i = 0; i < 1000000; i++) {
            Node n = new Node();
            n.payload = new int[1000];
            n.next = head;
            head = n;
        }
        println(0);
    }
}
"#;

#[test]
fn guest_stack_overflow_stays_a_catchable_exception() {
    // Within the hard budget, deep recursion still surfaces as the
    // semantic `StackOverflowError` the guest can observe.
    let bc = compile(DEEP_RECURSION);
    let result = Vm::run_program(&bc, VmConfig::correct(VmKind::HotSpotLike));
    assert!(matches!(result.outcome, Outcome::Completed { uncaught_exception: true }));
    assert!(result.output.contains("StackOverflow"), "output: {}", result.output);
}

#[test]
fn stack_budget_ends_run_gracefully_below_guest_limit() {
    // Raising `max_call_depth` past `stack_limit` models a fuzz config
    // that would otherwise recurse the host stack into the ground; the
    // hard budget must win, as an uncatchable graceful outcome.
    let bc = compile(DEEP_RECURSION);
    let mut config = VmConfig::correct(VmKind::HotSpotLike);
    config.max_call_depth = 1 << 20;
    config.stack_limit = 64;
    let result = Vm::run_program(&bc, config);
    assert_eq!(result.outcome, Outcome::BudgetExceeded(Resource::StackDepth));
    assert_eq!(result.observable(), "budget-exceeded stack-depth");
}

#[test]
fn stack_budget_is_not_catchable_by_the_guest() {
    let source = r#"
    class T {
        static int down(int n) {
            if (n <= 0) { return 0; }
            return 1 + T.down(n - 1);
        }
        static void main() {
            try { println(T.down(1000000)); }
            catch { println(-1); }
        }
    }
    "#;
    let bc = compile(source);
    let mut config = VmConfig::correct(VmKind::HotSpotLike);
    config.max_call_depth = 1 << 20;
    config.stack_limit = 64;
    let result = Vm::run_program(&bc, config);
    assert_eq!(result.outcome, Outcome::BudgetExceeded(Resource::StackDepth));
    assert!(!result.output.contains("-1"), "guest caught the budget: {}", result.output);
}

#[test]
fn heap_byte_budget_ends_run_gracefully() {
    let bc = compile(HEAP_HOG);
    let mut config = VmConfig::correct(VmKind::OpenJ9Like);
    config.max_heap_bytes = 1 << 20; // 1 MiB: the list cannot fit.
    let result = Vm::run_program(&bc, config);
    assert_eq!(result.outcome, Outcome::BudgetExceeded(Resource::HeapBytes));
    assert_eq!(result.observable(), "budget-exceeded heap-bytes");
}

#[test]
fn byte_budget_spares_programs_whose_garbage_is_collectable() {
    // Same allocation volume, but nothing stays live: the last-chance
    // collection in the allocator must reclaim it instead of tripping.
    let source = r#"
    class T {
        static void main() {
            int acc = 0;
            for (int i = 0; i < 2000; i++) {
                int[] scratch = new int[1000];
                scratch[0] = i;
                acc = acc + scratch[0];
            }
            println(acc);
        }
    }
    "#;
    let bc = compile(source);
    let mut config = VmConfig::correct(VmKind::HotSpotLike);
    config.max_heap_bytes = 1 << 20;
    let result = Vm::run_program(&bc, config);
    assert!(result.outcome.is_completed(), "outcome: {:?}", result.outcome);
}

#[test]
fn budget_verdicts_are_deterministic_across_runs_and_engines() {
    for source in [DEEP_RECURSION, HEAP_HOG] {
        let bc = compile(source);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.max_call_depth = 1 << 20;
        config.stack_limit = 64;
        config.max_heap_bytes = 1 << 20;
        let a = Vm::run_program(&bc, config.clone());
        let b = Vm::run_program(&bc, config.clone());
        assert_eq!(a.observable(), b.observable());
        // Interpreter-only runs hit the same budget class too (the budget
        // is a harness property, not an engine property).
        config.jit_enabled = false;
        let interp = Vm::run_program(&bc, config);
        assert_eq!(a.observable(), interp.observable());
    }
}

#[test]
fn resource_exhaustion_classes_are_recognized() {
    assert!(Outcome::Timeout.is_resource_exhausted());
    assert!(!Outcome::OutOfMemory.is_resource_exhausted(), "OOM stays oracle-comparable");
    assert!(Outcome::BudgetExceeded(Resource::HeapBytes).is_resource_exhausted());
    assert!(Outcome::BudgetExceeded(Resource::StackDepth).is_resource_exhausted());
    assert!(!Outcome::Completed { uncaught_exception: false }.is_resource_exhausted());
}
