//! Every statement-skeleton shape of the mutation corpus, instantiated
//! inside a hot method, must behave identically under the interpreter and
//! every JIT profile — a targeted pass-soundness sweep over exactly the
//! code shapes Artemis injects.

use cse_vm::{Outcome, Vm, VmConfig, VmKind};

/// Wraps a corpus-like statement sequence in a hot method.
fn harness(body: &str) -> String {
    format!(
        r#"
        class T {{
            static long sink = 0L;
            static void work(int x) {{
                {body}
            }}
            static void main() {{
                for (int i = 0; i < 4000; i++) {{
                    work(i);
                }}
                println(T.sink);
            }}
        }}
        "#
    )
}

/// Corpus samples with results folded into `sink` so the oracle sees the
/// skeleton's values (holes replaced by parameter-derived expressions).
const BODIES: &[&str] = &[
    "int a = x; a = a * 31 + 7; a ^= a >>> 7; T.sink += a;",
    "long l = (long) x; l = l * 1103515245L + 12345L; T.sink ^= l;",
    "byte b = (byte) x; b += 2; b = (byte) (b * 3); T.sink += b;",
    "boolean p = x > 100; boolean q = !p || x % 3 == 0; if (q) { T.sink += 1; }",
    "int s = 0; for (int i = 0; i < 7; i++) { s += i * x; } T.sink += s;",
    "int a = x & 7; int r = 0; switch (a) { case 0: case 1: r = 10; break; case 2: r = 20; default: r += 5; } T.sink += r;",
    "int[] arr = new int[] { x, x + 1, x + 2 }; T.sink += arr[0] + arr[2];",
    "int[] arr = new int[5]; for (int i = 0; i < arr.length; i++) { arr[i] = i * x; } T.sink += arr[4];",
    "int a = x; int d = x | 1; a = a / d + a % d; T.sink += a;",
    "int a = x; try { a = 1000 / (a & 3); } catch { a = -1; } T.sink += a;",
    "long l = (long) x; int i = (int) (l >> 3); byte b = (byte) i; T.sink += b;",
    "int v = x; int r = 0; for (int i = 0; i < 8; i++) { r = (r << 1) | (v & 1); v >>>= 1; } T.sink += r;",
    "int a = x; for (int w = -6; w < 5; w += 4) { a += 2; } T.sink += a & 1023;",
    "int[][] m = new int[2][3]; m[1][2] = x; T.sink += m[1][2] + m[0][0];",
    "int a = x; if (a % 2 == 0) { a /= 2; } else { a = 3 * a + 1; } T.sink += a;",
];

#[test]
fn hot_skeletons_agree_across_engines() {
    for (i, body) in BODIES.iter().enumerate() {
        let source = harness(body);
        let program = cse_lang::parse_and_check(&source)
            .unwrap_or_else(|e| panic!("skeleton {i} invalid: {e}"));
        let bytecode = cse_bytecode::compile(&program).unwrap();
        cse_bytecode::verify::verify_program(&bytecode).unwrap();
        let reference = Vm::run_program(&bytecode, VmConfig::interpreter_only(VmKind::HotSpotLike));
        assert!(
            matches!(reference.outcome, Outcome::Completed { .. }),
            "skeleton {i} did not complete"
        );
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            let tiered = Vm::run_program(&bytecode, VmConfig::correct(kind));
            assert_eq!(
                tiered.observable(),
                reference.observable(),
                "skeleton {i} diverged on {kind}: {body}"
            );
            assert!(
                tiered.stats.compilations + tiered.stats.osr_compilations > 0,
                "skeleton {i} never heated on {kind}"
            );
        }
    }
}

#[test]
fn forced_plans_pin_execution_modes() {
    use cse_vm::{ExecMode, ForcedPlan, Tier, TraceEvent};
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int f() { return 7; }
            static void main() { println(f()); println(f()); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let f = bytecode.find_method("T", "f").unwrap();
    // First call compiled, second interpreted.
    let mut plan = ForcedPlan::all_interpreted();
    plan.set(f, 0, ExecMode::Compiled(Tier::T2));
    let mut config = VmConfig::correct(VmKind::HotSpotLike);
    config.plan = Some(plan);
    config.record_method_entries = true;
    let result = Vm::run_program(&bytecode, config);
    assert_eq!(result.output, "7\n7\n");
    let entries: Vec<(u64, Tier)> = result
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MethodEntry { method, tier, invocation } if *method == f => {
                Some((*invocation, *tier))
            }
            _ => None,
        })
        .collect();
    assert_eq!(entries, vec![(0, Tier::T2), (1, Tier::INTERP)]);
}
